// Package core implements the CloudViews controller — the end-to-end
// runtime of paper §4 and §6 that ties the compiler, optimizer, metadata
// service, executor, and workload repository into one job service.
//
// A submitted job flows exactly as in Figure 6: the compiler fetches the
// annotations relevant to the job from the metadata service (one lookup),
// the optimizer rewrites the plan to reuse available views and/or to
// materialize annotated subgraphs, the executor runs the plan, the job
// manager publishes views the moment they are sealed (early
// materialization), and the finished job's plan and runtime statistics are
// reconciled into the workload repository, closing the feedback loop.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/breaker"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/fault"
	"cloudviews/internal/metadata"
	"cloudviews/internal/obs"
	"cloudviews/internal/optimizer"
	"cloudviews/internal/plan"
	"cloudviews/internal/storage"
	"cloudviews/internal/workload"
)

// Config carries the service-wide CloudViews switches.
type Config struct {
	// Enabled turns computation reuse on. Off, every job runs untouched.
	Enabled bool
	// MaxViewsPerJob bounds per-job materializations (§6.2); the paper's
	// production evaluation used 1.
	MaxViewsPerJob int
	// VCEnabled, when non-nil, restricts CloudViews to the listed VCs —
	// the per-VC opt-in of §8. Nil means every VC participates.
	VCEnabled map[string]bool
	// ValidateResults additionally executes the unoptimized plan and
	// verifies the outputs match (the output-validation step of §7.1).
	// Expensive; intended for tests and preview deployments.
	ValidateResults bool
	// LatePublish disables early materialization (§6.4): views are
	// registered with the metadata service only when the producing job
	// completes, and a failed job's partially written views are deleted.
	// Exists for the early-materialization ablation; production keeps
	// early publication on.
	LatePublish bool
	// MetadataStrict makes metadata-service lookup failures abort the job
	// instead of degrading to no-reuse. Off (the default) a job whose
	// RelevantViews round trip fails simply runs its original plan — reuse
	// is an optimization, never a dependency.
	MetadataStrict bool
	// CacheBytes sizes the storage hot-view cache (decoded partitions
	// served zero-copy to repeat consumers). Zero keeps the store's
	// default budget; negative disables the cache.
	CacheBytes int64
	// MaxInFlight bounds how many submissions may execute concurrently;
	// excess submissions queue for a slot (respecting their context).
	// Zero means unbounded.
	MaxInFlight int
	// DefaultDeadline, when positive, gives every job without an explicit
	// JobSpec.Deadline an absolute deadline of submission time plus this
	// many logical-clock units. Zero means jobs have no default deadline.
	DefaultDeadline int64
	// BreakerThreshold is the consecutive-failure count that trips a
	// dependency circuit breaker (metadata lookups, view-store reads).
	// Zero selects the default (5); negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long (logical-clock units) an open breaker
	// waits before letting a half-open probe through. Zero selects the
	// default (60).
	BreakerCooldown int64
	// TraceCapacity sizes the observability layer's per-job trace ring
	// (how many finished job traces Service.Trace can still serve). Zero
	// keeps the default capacity with tracing on; negative disables
	// tracing entirely — metrics stay live (same zero-default /
	// negative-off convention as CacheBytes).
	TraceCapacity int
}

// Defaults for the dependency circuit breakers (Config.BreakerThreshold,
// Config.BreakerCooldown).
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 60
)

// JobSpec is one job submission.
type JobSpec struct {
	Meta workload.JobMeta
	// Root is the compiled plan. The service never mutates it.
	Root *plan.Node
	// Tags are the metadata-service lookup keys; when empty they default
	// to the plan's inputs plus the template ID.
	Tags []string
	// Tokens is the job's VC capacity demand (used when a scheduler is
	// attached).
	Tokens int
	// Deadline is the job's absolute logical-clock deadline. A job whose
	// simulated completion time would pass it fails with a ReasonDeadline
	// JobError; one that provably cannot start in time is shed before
	// execution. Zero means no explicit deadline (Config.DefaultDeadline
	// may still apply).
	Deadline int64
}

// JobResult reports one completed job.
type JobResult struct {
	Spec     JobSpec
	Plan     *plan.Node
	Result   *exec.Result
	Decision *optimizer.Decision
	// BaselineResult is set when Config.ValidateResults is on.
	BaselineResult *exec.Result
	// AnnotationsUsed preserves the annotations the optimizer saw — the
	// "job resource" of §6.2 that makes the job reproducible via Replay.
	AnnotationsUsed []metadata.Annotation
	// StartTime/FinishTime are simulated times (queueing included when a
	// scheduler is attached).
	StartTime, FinishTime int64
}

// Service is the CloudViews-enabled job service.
type Service struct {
	Catalog *catalog.Catalog
	Store   *storage.Store
	Meta    *metadata.Service
	Repo    *workload.Repository
	Clock   *cluster.Clock
	Sched   *cluster.Scheduler // optional; nil disables queueing
	Exec    *exec.Executor
	Opt     *optimizer.Optimizer
	Config  Config

	changes  changeTracker
	recovery recoveryCounters
	admit    admission

	// obsv is the installed observability layer (see observe.go); nil
	// after SetObserver(nil).
	obsv *Observer

	// Dependency circuit breakers (nil when Config.BreakerThreshold < 0):
	// metaBreaker guards metadata lookups, storeBreaker guards view-store
	// reads. Both run on the simulated clock.
	metaBreaker  *breaker.Breaker
	storeBreaker *breaker.Breaker
}

// RecoveryStats snapshots the service's fault-recovery and lifecycle
// counters: how many vertex attempts were retried, how many views were
// quarantined after failing integrity/existence checks, how many
// mid-submit replans those quarantines forced, how many jobs skipped
// reuse because the metadata service was unreachable (or its breaker
// open), plus the lifecycle outcomes (shed / deadline / cancelled jobs)
// and the dependency circuit breakers' trip and short-circuit counts.
type RecoveryStats struct {
	VertexRetries    int64
	QuarantinedViews int64
	DegradedReplans  int64
	ReuseSkipped     int64
	// Shed counts jobs rejected by admission control before execution
	// (queue-time estimate past the deadline, or service draining).
	Shed int64
	// DeadlineExceeded counts jobs that failed because their simulated
	// completion time passed their logical-clock deadline.
	DeadlineExceeded int64
	// Cancelled counts jobs stopped by submission-context cancellation.
	Cancelled int64
	// BreakerOpens counts closed→open transitions across the dependency
	// breakers; BreakerShortCircuits counts requests turned away at an
	// open breaker without touching the dependency.
	BreakerOpens         int64
	BreakerShortCircuits int64
}

// recoveryCounters hold the lifecycle and fault-recovery tallies. Writers
// always go through bump, sharing the RWMutex's read side so unrelated
// increments stay concurrent; Recovery takes the write side, so a grouped
// update (e.g. quarantined+replans, bumped together for one quarantine
// event) is never observed half-applied — plain atomic loads could tear
// between the two increments and report a replan without its quarantine.
type recoveryCounters struct {
	mu          sync.RWMutex
	retries     atomic.Int64
	quarantined atomic.Int64
	replans     atomic.Int64
	reuseSkip   atomic.Int64
	shed        atomic.Int64
	deadline    atomic.Int64
	cancelled   atomic.Int64
}

// bump applies a group of counter increments atomically with respect to
// Recovery snapshots.
func (r *recoveryCounters) bump(f func()) {
	r.mu.RLock()
	f()
	r.mu.RUnlock()
}

// Recovery returns the service's fault-recovery counters. The snapshot is
// internally consistent: no grouped update is seen half-applied.
func (s *Service) Recovery() RecoveryStats {
	s.recovery.mu.Lock()
	rs := RecoveryStats{
		VertexRetries:    s.recovery.retries.Load(),
		QuarantinedViews: s.recovery.quarantined.Load(),
		DegradedReplans:  s.recovery.replans.Load(),
		ReuseSkipped:     s.recovery.reuseSkip.Load(),
		Shed:             s.recovery.shed.Load(),
		DeadlineExceeded: s.recovery.deadline.Load(),
		Cancelled:        s.recovery.cancelled.Load(),
	}
	s.recovery.mu.Unlock()
	for _, b := range []*breaker.Breaker{s.metaBreaker, s.storeBreaker} {
		if b != nil {
			rs.BreakerOpens += b.Opens()
			rs.BreakerShortCircuits += b.ShortCircuits()
		}
	}
	return rs
}

// StorageStats snapshots the storage layer's byte gauges: how many
// encoded view bytes are resident at rest, and what the decoded hot-view
// cache currently holds and has served.
type StorageStats struct {
	// ResidentEncodedBytes is the at-rest footprint of all stored views
	// (columnar payloads, not row representations).
	ResidentEncodedBytes int64
	// Views is the number of stored views.
	Views int
	// Cache reports the decoded hot-view cache: resident entries/bytes
	// plus hit/miss/eviction counters.
	Cache storage.CacheStats
}

// StorageStats returns the service's storage byte gauges.
func (s *Service) StorageStats() StorageStats {
	return StorageStats{
		ResidentEncodedBytes: s.Store.TotalBytes(),
		Views:                s.Store.Len(),
		Cache:                s.Store.CacheStats(),
	}
}

// InstallFaults wires one fault injector into every layer of the service:
// executor vertices, the view store, metadata lookups, and (when a
// scheduler is attached) cluster admission. Passing nil removes the hooks.
func (s *Service) InstallFaults(in *fault.Injector) {
	if in == nil {
		s.Exec.Faults = nil
		s.Store.Faults = nil
		s.Meta.Faults = nil
		if s.Sched != nil {
			s.Sched.Faults = nil
		}
		return
	}
	s.Exec.Faults = in
	s.Store.Faults = in
	s.Meta.Faults = in
	if s.Sched != nil {
		s.Sched.Faults = in
	}
}

// NewService wires a complete in-process job service around a catalog.
func NewService(cat *catalog.Catalog, cfg Config) *Service {
	st := storage.NewStore()
	meta := metadata.NewService()
	if cfg.MaxViewsPerJob == 0 {
		cfg.MaxViewsPerJob = 1
	}
	// Storage-initiated reclamation (utility-based eviction, direct
	// purges) must drop the metadata registration before the file goes
	// away, or metadata would briefly advertise views that no longer
	// exist (the §5.4 ordering, enforced from the storage side too).
	st.Deregister = func(preciseSig, _ string) { meta.Unregister(preciseSig) }
	if cfg.CacheBytes != 0 {
		st.SetCacheBudget(cfg.CacheBytes)
	}
	s := &Service{
		Catalog: cat,
		Store:   st,
		Meta:    meta,
		Repo:    workload.NewRepository(),
		Clock:   &cluster.Clock{},
		Exec:    &exec.Executor{Catalog: cat, Store: st},
		Opt: &optimizer.Optimizer{
			Meta:                 meta,
			Est:                  &optimizer.Estimator{Catalog: cat},
			MaxMaterializePerJob: cfg.MaxViewsPerJob,
		},
		Config: cfg,
	}
	if cfg.BreakerThreshold >= 0 {
		thr := cfg.BreakerThreshold
		if thr == 0 {
			thr = defaultBreakerThreshold
		}
		cd := cfg.BreakerCooldown
		if cd == 0 {
			cd = defaultBreakerCooldown
		}
		s.metaBreaker = breaker.New("metadata", thr, cd)
		s.storeBreaker = breaker.New("viewstore", thr, cd)
		// View-store reads flow through the store's admission gate: an
		// open breaker short-circuits the read with OpenError (which the
		// replan loop degrades around), and every real read outcome feeds
		// the breaker.
		st.Gate = func(string) error {
			if !s.storeBreaker.Allow(s.Clock.Now()) {
				return &breaker.OpenError{Dep: "viewstore"}
			}
			return nil
		}
		st.OnConsume = func(_ string, err error) {
			s.storeBreaker.Observe(s.Clock.Now(), err == nil)
		}
	}
	// Observability is on by default: metrics always, tracing unless
	// Config.TraceCapacity < 0. SetObserver(nil) strips every hook.
	s.SetObserver(NewObserver(cfg.TraceCapacity))
	return s
}

// vcEnabled reports whether CloudViews applies to the job's VC.
func (s *Service) vcEnabled(vc string) bool {
	if !s.Config.Enabled {
		return false
	}
	if s.Config.VCEnabled == nil {
		return true
	}
	return s.Config.VCEnabled[vc]
}

// defaultTags derives the metadata lookup tags from the job: its inputs
// (normalized names) and its recurring template ID (§6.1).
func defaultTags(spec JobSpec) []string {
	tags := append([]string(nil), spec.Tags...)
	if len(tags) == 0 {
		tags = plan.Inputs(spec.Root)
		if spec.Meta.TemplateID != "" {
			tags = append(tags, spec.Meta.TemplateID)
		}
	}
	return tags
}

// Submit runs one job through the full CloudViews pipeline.
//
// Deprecated: use Run, the canonical ctx-first entry point. Submit is
// exactly Run with context.Background().
func (s *Service) Submit(spec JobSpec) (*JobResult, error) {
	return s.Run(context.Background(), spec)
}

// SubmitCtx is Submit with a caller-controlled lifecycle.
//
// Deprecated: use Run; SubmitCtx is an alias kept for source
// compatibility.
func (s *Service) SubmitCtx(ctx context.Context, spec JobSpec) (*JobResult, error) {
	return s.Run(ctx, spec)
}

// SubmitBatch runs a batch of jobs with up to concurrency in flight
// (≤ 1 means GOMAXPROCS).
//
// Deprecated: use RunBatch, the canonical ctx-first entry point.
func (s *Service) SubmitBatch(specs []JobSpec, concurrency int) ([]*JobResult, error) {
	return s.RunBatch(context.Background(), specs, BatchOptions{Concurrency: concurrency})
}

// SubmitBatchCtx is SubmitBatch under one shared submission context.
//
// Deprecated: use RunBatch; SubmitBatchCtx is an alias kept for source
// compatibility.
func (s *Service) SubmitBatchCtx(ctx context.Context, specs []JobSpec, concurrency int) ([]*JobResult, error) {
	return s.RunBatch(ctx, specs, BatchOptions{Concurrency: concurrency})
}

// submitAt is the observability shell around submitJob, shared by the
// serial and batched paths: it counts the submission, opens the job's
// trace, runs the pipeline, then stamps the outcome (completed/failed
// counters, latency histogram, lifecycle-outcome counters, root-span
// attributes) and publishes the finished trace.
func (s *Service) submitAt(ctx context.Context, spec JobSpec, now int64) (*JobResult, error) {
	o := s.obsv
	if o != nil {
		o.jobsSubmitted.Inc()
	}
	tb := s.beginTrace(spec, now)
	jr, err := s.submitJob(ctx, spec, now, tb)
	end := float64(now)
	if err == nil {
		end = float64(jr.FinishTime)
		if o != nil {
			o.jobsCompleted.Inc()
			o.jobLatency.Observe(jr.FinishTime - jr.StartTime)
		}
	} else if o != nil {
		o.jobsFailed.Inc()
		var je *JobError
		if errors.As(err, &je) {
			switch je.Reason {
			case ReasonShed:
				o.jobsShed.Inc()
			case ReasonDeadline:
				o.jobsDeadline.Inc()
			case ReasonCancelled:
				o.jobsCancelled.Inc()
			}
		}
	}
	tb.finish(end, err)
	return jr, err
}

// submitJob runs the lifecycle gauntlet in order: admission (in-flight
// slot, draining latch), deadline resolution, deadline-aware shedding
// against the cluster ledger, then the breaker-gated planning and
// recovering execution pipeline. Every lifecycle failure comes back as a
// typed *JobError. tb may be nil (tracing off).
func (s *Service) submitJob(ctx context.Context, spec JobSpec, now int64, tb *traceBuilder) (*JobResult, error) {
	jobID := spec.Meta.JobID
	if err := s.admit.enter(ctx, s.Config.MaxInFlight); err != nil {
		return nil, s.lifecycleError(jobID, err)
	}
	defer s.admit.exit()
	if err := ctx.Err(); err != nil {
		return nil, s.lifecycleError(jobID, err)
	}
	adm := tb.span("admission", float64(now), float64(now))

	deadline := s.jobDeadline(spec, now)
	if deadline > 0 && s.Sched != nil {
		// Load shedding: if the ledger says the job cannot even start
		// (minimum duration) before its deadline, reject it up front
		// rather than burn cluster work on a guaranteed deadline miss.
		tokens := spec.Tokens
		if tokens < 1 {
			tokens = 1
		}
		if est, serr := s.Sched.EarliestStart(spec.Meta.VC, tokens, now, 1); serr == nil && est >= deadline {
			s.recovery.bump(func() { s.recovery.shed.Add(1) })
			adm.Set("shed", "deadline-unreachable")
			return nil, &JobError{JobID: jobID, Reason: ReasonShed,
				Err: fmt.Errorf("core: earliest start %d cannot meet deadline %d", est, deadline)}
		}
	}

	jr := &JobResult{Spec: spec, Plan: spec.Root, Decision: &optimizer.Decision{}}

	if s.vcEnabled(spec.Meta.VC) {
		if err := s.planWithReuse(jr, spec, now, tb, 0); err != nil {
			return nil, err
		}
	}

	res, err := s.executeRecovering(ctx, jr, spec, now, deadline, tb)
	if err != nil {
		return nil, s.lifecycleError(jobID, err)
	}
	jr.Result = res
	s.recovery.bump(func() { s.recovery.retries.Add(int64(res.Retries)) })

	// Queueing: reserve VC capacity for the job's simulated duration.
	jr.StartTime = now
	if s.Sched != nil {
		tokens := spec.Tokens
		if tokens < 1 {
			tokens = 1
		}
		start, aerr := s.Sched.Admit(spec.Meta.VC, tokens, now, int64(res.Latency)+1)
		if aerr == nil {
			jr.StartTime = start
			tb.span("schedule", float64(now), float64(start),
				obs.A("vc", spec.Meta.VC), obs.A("tokens", itoa(tokens)))
		}
	}
	jr.FinishTime = jr.StartTime + int64(res.Latency)
	// The simulated clock moves with completed work, so build-lock TTLs
	// (mined average runtimes, §6.1) expire on a meaningful timeline.
	s.Clock.AdvanceTo(jr.FinishTime + 1)

	// Close the feedback loop.
	s.Repo.Record(spec.Meta, jr.Plan, res)

	if s.Config.ValidateResults {
		base, berr := s.runBaseline(spec)
		if berr != nil {
			return nil, fmt.Errorf("core: baseline validation run failed: %w", berr)
		}
		jr.BaselineResult = base
		if err := outputsEqual(base, res); err != nil {
			return nil, fmt.Errorf("core: reuse changed results for job %s: %w", spec.Meta.JobID, err)
		}
	}
	return jr, nil
}

// planWithReuse performs the metadata lookup and reuse optimization for
// one submission attempt, implementing the first rung of the degradation
// ladder: when the metadata service is unreachable (and MetadataStrict is
// off), the job simply keeps its original plan — reuse skipped, counted,
// never fatal. Both dependency breakers gate the attempt: an open
// view-store breaker makes selecting views pointless (reads would only
// short-circuit), and an open metadata breaker skips the lookup without
// touching the unhealthy service at all.
// pass is the planning-pass number: 0 for the initial optimization, ≥ 1
// for quarantine- or breaker-forced replans (stamped on the optimize
// span, and the lookup child is named "re-match" instead of "match").
func (s *Service) planWithReuse(jr *JobResult, spec JobSpec, now int64, tb *traceBuilder, pass int) error {
	tick := float64(now)
	opt := tb.span("optimize", tick, tick)
	if pass > 0 {
		opt.Set("replan", itoa(pass))
	}
	matchName := "match"
	if pass > 0 {
		matchName = "re-match"
	}
	reuseSkip := func(why string) {
		s.recovery.bump(func() { s.recovery.reuseSkip.Add(1) })
		if o := s.obsv; o != nil {
			o.reuseSkipped.Inc()
		}
		opt.Set("decision", "skip-reuse")
		opt.Set("reason", why)
	}
	if s.storeBreaker != nil && !s.storeBreaker.Ready(now) {
		reuseSkip("breaker-open:" + s.storeBreaker.Name())
		jr.Plan = spec.Root
		jr.Decision = &optimizer.Decision{BreakerOpen: s.storeBreaker.Name()}
		jr.AnnotationsUsed = nil
		return nil
	}
	if s.metaBreaker != nil && !s.metaBreaker.Allow(now) {
		reuseSkip("breaker-open:" + s.metaBreaker.Name())
		jr.Plan = spec.Root
		jr.Decision = &optimizer.Decision{MetaUnavailable: true, BreakerOpen: s.metaBreaker.Name()}
		jr.AnnotationsUsed = nil
		return nil
	}
	anns, err := s.Meta.TryRelevantViews(spec.Meta.VC, defaultTags(spec))
	if s.metaBreaker != nil {
		s.metaBreaker.Observe(now, err == nil)
	}
	if err != nil {
		opt.Child(matchName, tick, tick, obs.A("error", "lookup-failed"))
		if s.Config.MetadataStrict {
			return &JobError{JobID: spec.Meta.JobID, Reason: ReasonDependency,
				Err: fmt.Errorf("core: metadata lookup for job %s: %w", spec.Meta.JobID, err)}
		}
		reuseSkip("metadata-unavailable")
		jr.Plan = spec.Root
		jr.Decision = &optimizer.Decision{MetaUnavailable: true}
		jr.AnnotationsUsed = nil
		return nil
	}
	opt.Child(matchName, tick, tick, obs.A("annotations", itoa(len(anns))))
	jr.AnnotationsUsed = annotationsSnapshot(anns)
	jr.Plan, jr.Decision = s.Opt.Optimize(spec.Root, spec.Meta.JobID, anns, now)
	if opt != nil {
		dec := jr.Decision
		opt.Set("views_used", itoa(len(dec.ViewsUsed)))
		opt.Set("views_built", itoa(len(dec.ViewsBuilt)))
		opt.Set("views_rejected", itoa(len(dec.ViewsRejected)))
		opt.Set("est_cost", ftoa(dec.EstimatedCost))
		for _, v := range dec.ViewsUsed {
			opt.Child("inject", tick, tick,
				obs.A("kind", "scan"), obs.A("sig", v.PreciseSig), obs.A("path", v.Path))
		}
		for _, b := range dec.ViewsBuilt {
			opt.Child("inject", tick, tick,
				obs.A("kind", "build"), obs.A("sig", b.PreciseSig), obs.A("path", b.Path))
		}
	}
	return nil
}

// maxReplans bounds the quarantine-and-replan loop. Each round removes one
// broken view from the metadata service, so the loop strictly shrinks the
// reusable set; the bound only guards against pathological plans.
const maxReplans = 4

// executeRecovering is the second rung of the degradation ladder: a job
// whose optimized plan trips over a corrupt or vanished view does not
// fail — the view is quarantined (deregistered from metadata, deleted from
// storage) and the job is transparently re-optimized from its pristine
// plan, which can no longer select the quarantined view. Transient vertex
// failures never reach this level (the executor's retry loop absorbs
// them); permanent non-view failures propagate unchanged.
func (s *Service) executeRecovering(ctx context.Context, jr *JobResult, spec JobSpec, now, deadline int64, tb *traceBuilder) (*exec.Result, error) {
	var quarantined []string
	for replan := 0; ; replan++ {
		res, err := s.execute(ctx, jr.Plan, spec, jr.Decision, now, deadline, tb, replan)
		if err == nil {
			jr.Decision.QuarantinedViews = quarantined
			return res, nil
		}
		// A view read short-circuited by the store's open breaker is not a
		// broken view — the dependency is unhealthy, not the payload. Replan
		// without quarantining: planWithReuse sees the open breaker and
		// degrades the job to its baseline plan.
		var oe *breaker.OpenError
		if errors.As(err, &oe) {
			if replan >= maxReplans || !s.vcEnabled(spec.Meta.VC) {
				return nil, err
			}
			s.recovery.bump(func() { s.recovery.replans.Add(1) })
			if perr := s.planWithReuse(jr, spec, now, tb, replan+1); perr != nil {
				return nil, perr
			}
			continue
		}
		sig, path, ok := viewFailure(err, jr.Decision)
		if !ok || replan >= maxReplans || !s.vcEnabled(spec.Meta.VC) {
			return nil, err
		}
		// Quarantine: deregister first so no new consumer selects the view
		// (the §5.4 ordering), then drop the broken payload.
		if sig != "" {
			s.Meta.Unregister(sig)
		}
		s.Store.Delete(path)
		quarantined = append(quarantined, path)
		// One grouped bump per quarantine event: a Recovery snapshot never
		// sees the replan without its quarantine.
		s.recovery.bump(func() {
			s.recovery.quarantined.Add(1)
			s.recovery.replans.Add(1)
		})
		if err := s.planWithReuse(jr, spec, now, tb, replan+1); err != nil {
			return nil, err
		}
	}
}

// viewFailure classifies an execution error as a recoverable view problem,
// returning the precise signature and path to quarantine. Corrupt views
// carry their own identity; a vanished view is recovered through the
// decision's used-view list (an arbitrary missing path — e.g. a user plan
// scanning a dead view directly — is not recoverable by replanning).
func viewFailure(err error, dec *optimizer.Decision) (sig, path string, ok bool) {
	var ce *storage.CorruptError
	if errors.As(err, &ce) {
		return ce.PreciseSig, ce.Path, true
	}
	var nf *storage.NotFoundError
	if errors.As(err, &nf) {
		for _, v := range dec.ViewsUsed {
			if v.Path == nf.Path {
				return v.PreciseSig, v.Path, true
			}
		}
	}
	return "", "", false
}

// execute runs the plan with the early-materialization hook wired: each
// view is published to the metadata service the instant its files seal,
// and build locks for views that never sealed are released on failure.
// A job stopped by cancellation or a deadline additionally retracts the
// views it already published — a job that did not finish leaves nothing
// behind.
func (s *Service) execute(ctx context.Context, root *plan.Node, spec JobSpec, dec *optimizer.Decision, now, deadline int64, tb *traceBuilder, attempt int) (*exec.Result, error) {
	intents := map[string]optimizer.BuildIntent{}
	for _, b := range dec.ViewsBuilt {
		intents[b.PreciseSig] = b
	}
	// Independent Materialize operators can seal concurrently under the
	// parallel DAG scheduler, so the hook's bookkeeping takes its own
	// lock. The maps are read lock-free after ex.Run returns (all workers
	// have joined by then). sealed maps precise signature → view path so
	// lifecycle retraction can reach the file.
	var hookMu sync.Mutex
	sealed := map[string]string{}
	var pending []metadata.ViewInfo

	ex := *s.Exec // copy so per-job hooks don't race across submissions
	// Per-attempt vertex hook: metrics flow immediately; when the job is
	// traced the events are buffered and attached below, only if this
	// attempt succeeds (see vertexCollector).
	var col *vertexCollector
	if o := s.obsv; o != nil {
		col = &vertexCollector{o: o, buffer: tb != nil}
		ex.Obs = col
	}
	ex.OnViewMaterialized = func(v *storage.View) {
		intent, ok := intents[v.PreciseSig]
		if !ok {
			return
		}
		// Stamp the absolute expiry (instance units) into the file.
		v.ExpiresAt = spec.Meta.Instance + intent.ExpiryDelta
		info := metadata.ViewInfo{
			PreciseSig: v.PreciseSig,
			NormSig:    v.NormSig,
			Path:       v.Path,
			Schema:     v.Schema,
			Props:      v.Props,
			Rows:       v.Rows,
			// Bytes is the logical (row-representation) size the cost model
			// prices a view scan on; EncodedBytes is the smaller at-rest
			// columnar footprint storage actually holds.
			Bytes:         v.LogicalBytes,
			EncodedBytes:  v.Bytes,
			ProducerJobID: spec.Meta.JobID,
			ExpiresAt:     v.ExpiresAt,
		}
		if s.Config.LatePublish {
			// Ablation mode: hold publication until the job completes.
			hookMu.Lock()
			pending = append(pending, info)
			hookMu.Unlock()
			return
		}
		// Early materialization (§6.4): consumers may use the view while
		// this job is still running.
		s.Meta.ReportMaterialized(info)
		s.changes.recordBuild()
		hookMu.Lock()
		sealed[v.PreciseSig] = v.Path
		hookMu.Unlock()
	}

	res, err := ex.RunCtx(ctx, root, spec.Meta.JobID, now, deadline)
	if err != nil {
		// Early mode: views already sealed survive (checkpoint
		// semantics); locks for unsealed views are released so another
		// job can build them. Late mode: unpublished files are deleted
		// too — the job is atomic, nothing survives.
		for _, p := range pending {
			s.Store.Delete(p.Path)
		}
		for sig := range intents {
			if _, ok := sealed[sig]; !ok {
				s.Meta.AbortMaterialize(sig, spec.Meta.JobID)
			}
		}
		// A cancelled or deadline-failed job is not a checkpoint — it must
		// leave nothing published. Retract early-published views too:
		// deregister before deleting the file (the §5.4 ordering), so an
		// in-flight consumer degrades via the quarantine path instead of
		// reading a dangling registration.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			for sig, path := range sealed {
				s.Meta.Unregister(sig)
				s.Store.Delete(path)
			}
			tick := float64(now)
			for _, path := range sortedPaths(sealed) {
				tb.span("retract", tick, tick, obs.A("path", path))
			}
		}
		// A failed attempt gets an outcome-only execute span: its buffered
		// vertex events are discarded because which siblings had already
		// completed is scheduling-dependent under the DAG executor.
		tb.span("execute", float64(now), float64(now),
			obs.A("attempt", itoa(attempt)), obs.A("error", errClass(err)))
		return nil, err
	}
	for _, p := range pending {
		s.Meta.ReportMaterialized(p)
		s.changes.recordBuild()
		sealed[p.PreciseSig] = p.Path
	}
	if len(sealed) < len(intents) {
		// An intended view never sealed: this job's Materialize lost the
		// first-writer-wins race to a builder that took over its expired
		// lock. Release any lock still held and keep only the views this
		// job actually published in its decision.
		kept := dec.ViewsBuilt[:0]
		for _, b := range dec.ViewsBuilt {
			if _, ok := sealed[b.PreciseSig]; ok {
				kept = append(kept, b)
			} else {
				s.Meta.AbortMaterialize(b.PreciseSig, spec.Meta.JobID)
			}
		}
		dec.ViewsBuilt = kept
	}
	if tb != nil && col != nil {
		// All executor workers have joined; col.events is read lock-free.
		// Every quantity below is simulated (ticks, rows, simulated CPU),
		// so the span tree is identical across serial and DAG execution —
		// export order-normalization handles the arrival order.
		exSpan := tb.span("execute", float64(now), float64(now)+res.Latency,
			obs.A("attempt", itoa(attempt)))
		matEnd := map[string]float64{}
		for _, ev := range col.events {
			sp := exSpan.Child(ev.Kind, ev.Start, ev.End,
				obs.A("site", ev.Site), obs.A("rows", itoa64(ev.Rows)),
				obs.A("bytes", itoa64(ev.Bytes)), obs.A("cpu", ftoa(ev.CPU)))
			if ev.Attempts > 1 {
				sp.Set("attempts", itoa(ev.Attempts))
				sp.Set("retry_wait", ftoa(ev.RetryWait))
			}
			if ev.FaultDelay > 0 {
				sp.Set("fault_delay", ftoa(ev.FaultDelay))
			}
			switch {
			case ev.Cache != "": // view scan: decode (verify included) or cache hit
				sp.Child("storage.decode", ev.Start, ev.End,
					obs.A("path", ev.ViewPath), obs.A("cache", ev.Cache))
			case ev.ViewPath != "": // materialize: columnar encode
				sp.Child("storage.encode", ev.Start, ev.End, obs.A("path", ev.ViewPath))
				matEnd[ev.ViewPath] = ev.End
			}
		}
		// Publication spans: one per sealed view, at the tick its encode
		// finished (early materialization) or the job's end (late mode).
		jobEnd := float64(now) + res.Latency
		for _, path := range sortedPaths(sealed) {
			at := jobEnd
			if t, ok := matEnd[path]; ok {
				at = t
			}
			tb.span("publish", at, at, obs.A("path", path))
		}
	}
	return res, nil
}

// runBaseline executes the unoptimized plan against a scratch view store
// so validation can never interfere with real materializations.
func (s *Service) runBaseline(spec JobSpec) (*exec.Result, error) {
	ex := exec.Executor{Catalog: s.Catalog, Store: storage.NewStore()}
	return ex.Run(plan.Clone(spec.Root), spec.Meta.JobID+"-baseline", s.Clock.Now())
}

func outputsEqual(a, b *exec.Result) error {
	if len(a.Outputs) != len(b.Outputs) {
		return fmt.Errorf("output sink count %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	for name, rows := range a.Outputs {
		other, ok := b.Outputs[name]
		if !ok {
			return fmt.Errorf("missing output %q", name)
		}
		if !data.RowsEqual(rows, other) {
			return fmt.Errorf("output %q differs", name)
		}
	}
	return nil
}

// RunAnalyzer executes the CloudViews analyzer over the workload
// repository and installs the resulting annotations into the metadata
// service — one bulk swap either way. An unscoped run replaces the whole
// annotation set (LoadAnalysis); a scoped run (cluster/BU/VC filters) saw
// only its slice of the workload, so its output is merged with SaveAll
// rather than clobbering the annotations other scopes are serving. It
// returns the analysis for reporting.
func (s *Service) RunAnalyzer(cfg analyzer.Config) *analyzer.Analysis {
	a := analyzer.New(s.Repo)
	if s.obsv != nil {
		a.Obs = s.obsv
	}
	an := a.Analyze(cfg)
	if len(cfg.Clusters)+len(cfg.BusinessUnits)+len(cfg.VCs) > 0 {
		s.Meta.SaveAll(an.Annotations)
	} else {
		s.Meta.LoadAnalysis(an.Annotations)
	}
	return an
}

// RunOfflinePhase pre-materializes the offline-annotated subgraphs of a
// job ahead of the workload (§6.2's offline mode for tenants with slack).
// It returns the number of views built.
func (s *Service) RunOfflinePhase(spec JobSpec) (int, error) {
	if !s.vcEnabled(spec.Meta.VC) {
		return 0, nil
	}
	now := s.Clock.Now()
	anns := s.Meta.RelevantViews(spec.Meta.VC, defaultTags(spec))
	plans, intents := s.Opt.OfflineViewPlans(spec.Root, spec.Meta.JobID, anns, now)
	built := 0
	for i, p := range plans {
		dec := &optimizer.Decision{ViewsBuilt: []optimizer.BuildIntent{intents[i]}}
		if _, err := s.execute(context.Background(), p, spec, dec, now, 0, nil, 0); err != nil {
			return built, err
		}
		built++
	}
	return built, nil
}

// BeginInstance advances the service to recurring instance i: expired view
// registrations are purged from the metadata service first, then the
// physical files are deleted — the §5.4 ordering that keeps in-flight
// consumers safe.
func (s *Service) BeginInstance(i int64) {
	s.changes.roll()
	for _, path := range s.Meta.PurgeExpired(i) {
		s.Store.Delete(path)
	}
	// Views that never made it into the metadata service (crashed
	// builders) are reclaimed straight from storage.
	for _, v := range s.Store.Views() {
		if v.ExpiresAt <= i {
			if _, ok := s.Meta.LookupView(v.PreciseSig); !ok {
				s.Store.Delete(v.Path)
			}
		}
	}
}
