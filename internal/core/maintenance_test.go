package core

import (
	"fmt"
	"testing"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

func TestAnalysisStaleDetection(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	seedHistory(t, s)

	// Instance 1 behaves: views get built, analysis is fresh.
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	s.BeginInstance(2) // rolls the counter: 1 build last instance
	if s.ViewsBuiltLastInstance() != 1 {
		t.Errorf("builds last instance = %d", s.ViewsBuiltLastInstance())
	}
	if s.AnalysisStale() {
		t.Error("analysis should be fresh after a building instance")
	}

	// Instance 2: the template changed *inside* the shared computation
	// (the repartitioning width), so no subgraph matches the annotation's
	// normalized signature and nothing materializes.
	deliver(t, s.Catalog, 2)
	changedSub := plan.Scan("events", guidFor(2), eventSchema()).
		Filter(expr.Eq(expr.C(2, "day"), expr.P("day", data.Date(17002)))).
		ShuffleHash([]int{0}, 16). // was 4 in the original template
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}, {Fn: plan.AggCount, Col: 1}})
	changed := JobSpec{
		Meta: specA("a2-changed", 2).Meta,
		Root: changedSub.Sort([]int{1}, []bool{true}).Top(10).Output("topUsers"),
	}
	if _, err := s.Submit(changed); err != nil {
		t.Fatal(err)
	}
	s.BeginInstance(3)
	if s.ViewsBuiltLastInstance() != 0 {
		t.Errorf("changed workload still built %d views", s.ViewsBuiltLastInstance())
	}
	if !s.AnalysisStale() {
		t.Error("analysis should be flagged stale after builds stop")
	}

	// Rerunning the analyzer over the new history refreshes annotations;
	// the next instance builds again.
	an := s.RunAnalyzer(analyzer.Config{MinFrequency: 2, TopK: 1})
	if len(an.Selected) == 0 {
		t.Fatal("re-analysis selected nothing")
	}
}

func TestAnalysisStaleNeedsBaselineAndAnnotations(t *testing.T) {
	s := newService(t)
	// No annotations: never stale.
	if s.AnalysisStale() {
		t.Error("no annotations should never be stale")
	}
	seedHistory(t, s)
	// Annotations loaded but no instance completed yet: not stale.
	if s.AnalysisStale() {
		t.Error("no baseline instance yet, should not be stale")
	}
}

func TestReclaimStorage(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	// Two templates over disjoint subgraphs so two views exist with
	// different utilities.
	seedHistory(t, s) // selects the shared agg (high utility)
	deliver(t, s.Catalog, 1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	if s.Store.Len() != 1 {
		t.Fatalf("store has %d views", s.Store.Len())
	}
	viewBytes := s.Store.Views()[0].Bytes

	// An orphan view (no annotation backs it) ranks below everything.
	orphanPlan := plan.Scan("events", guidFor(1), eventSchema()).
		Filter(expr.B(expr.OpGt, expr.C(3, "dur"), expr.Lit(data.Float(1)))).
		Gather()
	orphanSig := sigOf(orphanPlan)
	orphan := orphanPlan.Materialize("/views/orphan", orphanSig.Precise, orphanSig.Normalized, plan.PhysicalProps{}).Output("x")
	if _, err := s.Exec.Run(orphan, "orphan-job", 1); err != nil {
		t.Fatal(err)
	}
	if s.Store.Len() != 2 {
		t.Fatalf("store has %d views, want 2", s.Store.Len())
	}

	// Reclaim a little: the orphan goes first, the annotated view stays.
	purged := s.ReclaimStorage(1)
	if len(purged) != 1 || purged[0] != "/views/orphan" {
		t.Fatalf("purged = %v, want the orphan", purged)
	}
	if s.Store.Len() != 1 {
		t.Error("annotated view should survive small reclamation")
	}

	// Reclaim everything.
	purged = s.ReclaimStorage(viewBytes * 10)
	if len(purged) != 1 {
		t.Fatalf("second reclaim purged %v", purged)
	}
	if s.Store.Len() != 0 || len(s.Meta.Views()) != 0 {
		t.Error("full reclamation left residue")
	}
	// Jobs keep running fine (they just rebuild).
	if _, err := s.Submit(specB("b1", 1)); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimOrderIsLowestUtilityFirst(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	// Seed with TopK 2 so two views with different utilities exist.
	for i, spec := range []JobSpec{specA("a0", 0), specB("b0", 0)} {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	an := s.RunAnalyzer(analyzer.Config{MinFrequency: 2, TopK: 2})
	if len(an.Selected) < 2 {
		t.Skip("fixture yields fewer than two selections")
	}
	deliver(t, s.Catalog, 1)
	s.Opt.MaxMaterializePerJob = 2
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(specB("b1", 1)); err != nil {
		t.Fatal(err)
	}
	if s.Store.Len() < 2 {
		t.Skipf("only %d views built", s.Store.Len())
	}
	// Purge exactly one: it must be the lower-utility one.
	utilOf := map[string]float64{}
	for _, v := range s.Meta.Views() {
		if ann, ok := s.Meta.Annotation(v.NormSig); ok {
			utilOf[v.Path] = ann.Utility
		}
	}
	purged := s.ReclaimStorage(1)
	if len(purged) != 1 {
		t.Fatalf("purged %v", purged)
	}
	for path, u := range utilOf {
		if path != purged[0] && u < utilOf[purged[0]] {
			t.Errorf("purged %s (util %.0f) before lower-utility %s (util %.0f)",
				purged[0], utilOf[purged[0]], path, u)
		}
	}
}

// sigOf is a tiny helper to avoid importing signature in multiple spots.
func sigOf(n *plan.Node) (s struct{ Precise, Normalized string }) {
	full := fmt.Sprintf("%s", n.EncodeString(expr.Precise))
	norm := fmt.Sprintf("%s", n.EncodeString(expr.Normalized))
	// Encodings are valid unique identifiers for the store in tests.
	s.Precise, s.Normalized = full, norm
	return
}

func TestViewProvenanceAndReplay(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	an := seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	builder, err := s.Submit(specA("a1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(builder.AnnotationsUsed) == 0 {
		t.Fatal("annotations not preserved as job resource")
	}
	path := builder.Decision.ViewsBuilt[0].Path

	// Provenance by path, by signature, and by fragment.
	for _, key := range []string{path, builder.Decision.ViewsBuilt[0].PreciseSig} {
		p, err := s.ViewProvenance(key)
		if err != nil {
			t.Fatalf("provenance(%q): %v", key, err)
		}
		if p.ProducerJobID != "a1" {
			t.Errorf("producer = %q", p.ProducerJobID)
		}
		if !p.Annotated || p.Frequency != an.Selected[0].Frequency {
			t.Errorf("selection rationale lost: %+v", p)
		}
		if p.Rows <= 0 || p.Bytes <= 0 {
			t.Errorf("missing stats: %+v", p)
		}
	}
	if _, err := s.ViewProvenance("no-such-view"); err == nil {
		t.Error("missing view should error")
	}

	// Replay a consumer job: same decisions, same output.
	consumer, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(consumer.Decision.ViewsUsed) != 1 {
		t.Fatal("consumer did not reuse")
	}
	replayed, err := s.Replay(consumer)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Decision.ViewsUsed) != 1 {
		t.Error("replay lost the reuse decision")
	}
	if !data.RowsEqual(consumer.Result.Outputs["activeUsers"], replayed.Result.Outputs["activeUsers"]) {
		t.Error("replay produced different results")
	}
}
