package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"cloudviews/internal/fault"
)

// chaosRounds returns the soak length: the CHAOS_ROUNDS env knob, or the
// default that pushes the soak past 200 jobs (the acceptance floor).
func chaosRounds() int {
	if v := os.Getenv("CHAOS_ROUNDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 6
}

// TestChaosSoak drives batches of concurrent jobs through a service with a
// randomized (but seeded, hence reproducible) fault schedule — vertex
// crashes, slow stages, storage read/write failures, silent view
// corruption, metadata blackouts, admission preemptions — and asserts the
// crash invariants of TestRandomFailureInjection now under concurrency and
// partial recovery:
//
//  1. zero wrong results: every job validates byte-for-byte against a
//     clean baseline execution (Config.ValidateResults),
//  2. zero wedged locks and store↔metadata consistency after every round,
//  3. liveness: after the faults stop, a fresh submitter still builds or
//     reuses.
//
// Single-partition transient vertex failures must recover via retry — with
// the configured rates no job is expected to fail at all; any submission
// error fails the test.
func TestChaosSoak(t *testing.T) {
	rounds := chaosRounds()
	const (
		instancesPerRound = 3
		jobsPerInstance   = 12 // 6 specA + 6 specB variants
	)
	totalJobs := 0
	var agg RecoveryStats

	for round := 0; round < rounds; round++ {
		s := newService(t) // ValidateResults on: every job byte-diffs vs clean baseline
		s.Sched = newSchedulerWithVC("vc1", 64)
		seedHistory(t, s)
		totalJobs += 2

		in := fault.NewInjector(fault.Config{
			Seed:          int64(1000 + round),
			VertexCrash:   0.03,
			VertexSlow:    0.10,
			SlowDelay:     5,
			StorageRead:   0.03,
			StorageWrite:  0.02,
			CorruptWrite:  0.10,
			MetaBlackout:  0.08,
			AdmitDelay:    0.10,
			AdmitDelayMax: 20,
		})
		s.InstallFaults(in)

		for inst := int64(1); inst <= instancesPerRound; inst++ {
			deliver(t, s.Catalog, inst)
			s.BeginInstance(inst)
			var batch []JobSpec
			for j := 0; j < jobsPerInstance/2; j++ {
				batch = append(batch,
					specA(fmt.Sprintf("r%d-i%d-a%d", round, inst, j), inst),
					specB(fmt.Sprintf("r%d-i%d-b%d", round, inst, j), inst))
			}
			if _, err := s.SubmitBatch(batch, 8); err != nil {
				t.Fatalf("round %d instance %d: job failed under chaos: %v", round, inst, err)
			}
			totalJobs += len(batch)

			// Store↔metadata consistency after every instance: every
			// registered view has its file.
			for _, mv := range s.Meta.Views() {
				if _, err := s.Store.Get(mv.Path); err != nil {
					t.Fatalf("round %d: metadata references missing file %s", round, mv.Path)
				}
			}
			// Cache↔store consistency: a quarantined (deleted) view must
			// be dropped from the hot cache with its file — every cached
			// path still resolves.
			for _, p := range s.Store.CachedPaths() {
				if _, err := s.Store.Get(p); err != nil {
					t.Fatalf("round %d: hot cache holds dropped view %s", round, p)
				}
			}
		}

		// Faults off: the service must be fully live again.
		s.InstallFaults(nil)
		if _, _, locks, _, _ := s.Meta.Stats(); locks != 0 {
			t.Fatalf("round %d: %d build locks wedged after all jobs completed", round, locks)
		}
		follow, err := s.Submit(specB(fmt.Sprintf("r%d-follow", round), instancesPerRound))
		if err != nil {
			t.Fatalf("round %d: clean follow-up failed: %v", round, err)
		}
		if len(follow.Decision.ViewsUsed)+len(follow.Decision.ViewsBuilt) == 0 {
			t.Fatalf("round %d: follow-up neither built nor reused (wedged?)", round)
		}
		totalJobs++

		rec := s.Recovery()
		agg.VertexRetries += rec.VertexRetries
		agg.QuarantinedViews += rec.QuarantinedViews
		agg.DegradedReplans += rec.DegradedReplans
		agg.ReuseSkipped += rec.ReuseSkipped
		if fired := in.TotalFired(); fired == 0 {
			t.Fatalf("round %d: injector fired nothing — the soak tested nothing", round)
		}
	}

	if wantFloor := 200; rounds >= 6 && totalJobs < wantFloor {
		t.Fatalf("soak ran %d jobs, acceptance floor is %d", totalJobs, wantFloor)
	}
	// The fault classes must actually have exercised the recovery paths.
	if agg.VertexRetries == 0 {
		t.Error("no vertex retries over the whole soak — retry path untested")
	}
	if agg.ReuseSkipped == 0 {
		t.Error("no degraded lookups over the whole soak — blackout path untested")
	}
	t.Logf("chaos soak: %d jobs, recovery=%+v", totalJobs, agg)
}
