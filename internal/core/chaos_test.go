package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"cloudviews/internal/fault"
)

// chaosRounds returns the soak length: the CHAOS_ROUNDS env knob, or the
// default that pushes the soak past 200 jobs (the acceptance floor).
func chaosRounds() int {
	if v := os.Getenv("CHAOS_ROUNDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 6
}

// TestChaosSoak drives batches of concurrent jobs through a service with a
// randomized (but seeded, hence reproducible) fault schedule — vertex
// crashes, slow stages, storage read/write failures, silent view
// corruption, metadata blackouts, admission preemptions — and asserts the
// crash invariants of TestRandomFailureInjection now under concurrency and
// partial recovery:
//
//  1. zero wrong results: every job validates byte-for-byte against a
//     clean baseline execution (Config.ValidateResults),
//  2. zero wedged locks and store↔metadata consistency after every round,
//  3. liveness: after the faults stop, a fresh submitter still builds or
//     reuses.
//
// Single-partition transient vertex failures must recover via retry — with
// the configured rates no job is expected to fail at all; any submission
// error fails the test.
//
// Each round additionally runs a lifecycle wave on top of the fault
// schedule: jobs with randomized mid-flight cancellations, pre-cancelled
// contexts, and tight logical-clock deadlines. A wave job either succeeds
// or fails with a typed *JobError (cancelled/deadline/shed) — and a failed
// job must leave nothing behind: no build locks, no published views, no
// store files, and no leaked goroutines once the soak ends.
func TestChaosSoak(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	rounds := chaosRounds()
	const (
		instancesPerRound = 3
		jobsPerInstance   = 12 // 6 specA + 6 specB variants
	)
	totalJobs := 0
	var agg RecoveryStats

	for round := 0; round < rounds; round++ {
		s := newService(t) // ValidateResults on: every job byte-diffs vs clean baseline
		s.Sched = newSchedulerWithVC("vc1", 64)
		seedHistory(t, s)
		totalJobs += 2

		in := fault.NewInjector(fault.Config{
			Seed:          int64(1000 + round),
			VertexCrash:   0.03,
			VertexSlow:    0.10,
			SlowDelay:     5,
			StorageRead:   0.03,
			StorageWrite:  0.02,
			CorruptWrite:  0.10,
			MetaBlackout:  0.08,
			AdmitDelay:    0.10,
			AdmitDelayMax: 20,
		})
		s.InstallFaults(in)

		for inst := int64(1); inst <= instancesPerRound; inst++ {
			deliver(t, s.Catalog, inst)
			s.BeginInstance(inst)
			var batch []JobSpec
			for j := 0; j < jobsPerInstance/2; j++ {
				batch = append(batch,
					specA(fmt.Sprintf("r%d-i%d-a%d", round, inst, j), inst),
					specB(fmt.Sprintf("r%d-i%d-b%d", round, inst, j), inst))
			}
			if _, err := s.SubmitBatch(batch, 8); err != nil {
				t.Fatalf("round %d instance %d: job failed under chaos: %v", round, inst, err)
			}
			totalJobs += len(batch)

			// Store↔metadata consistency after every instance: every
			// registered view has its file.
			for _, mv := range s.Meta.Views() {
				if _, err := s.Store.Get(mv.Path); err != nil {
					t.Fatalf("round %d: metadata references missing file %s", round, mv.Path)
				}
			}
			// Cache↔store consistency: a quarantined (deleted) view must
			// be dropped from the hot cache with its file — every cached
			// path still resolves.
			for _, p := range s.Store.CachedPaths() {
				if _, err := s.Store.Get(p); err != nil {
					t.Fatalf("round %d: hot cache holds dropped view %s", round, p)
				}
			}
		}

		// Lifecycle wave: cancellations and tight deadlines under the same
		// fault schedule. Modes rotate deterministically; the mid-flight
		// cancel delay is wall-clock (cancellation is asynchronous by
		// nature), so whether those jobs finish first is racy — both
		// outcomes must satisfy the invariants below.
		waveRng := rand.New(rand.NewSource(int64(9000 + round)))
		const waveJobs = 8
		waveErr := make([]error, waveJobs)
		waveID := make([]string, waveJobs)
		delays := make([]time.Duration, waveJobs)
		for j := range delays {
			delays[j] = time.Duration(waveRng.Int63n(int64(2 * time.Millisecond)))
		}
		var wg sync.WaitGroup
		for j := 0; j < waveJobs; j++ {
			id := fmt.Sprintf("r%d-wave-%d", round, j)
			waveID[j] = id
			var spec JobSpec
			if j%2 == 0 {
				spec = specA(id, instancesPerRound)
			} else {
				spec = specB(id, instancesPerRound)
			}
			mode := j % 4
			wg.Add(1)
			go func(j int, spec JobSpec, mode int, delay time.Duration) {
				defer wg.Done()
				ctx := context.Background()
				switch mode {
				case 0: // clean lifecycle, chaos only
				case 1: // mid-flight cancel after a tiny wall delay
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					timer := time.AfterFunc(delay, cancel)
					defer timer.Stop()
					defer cancel()
				case 2: // pre-cancelled: must never execute
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				case 3: // unmeetable deadline on the logical clock
					spec.Deadline = s.Clock.Now() + 1
				}
				_, waveErr[j] = s.SubmitCtx(ctx, spec)
			}(j, spec, mode, delays[j])
		}
		wg.Wait()
		failedWave := map[string]bool{}
		for j, err := range waveErr {
			if err == nil {
				continue
			}
			var je *JobError
			if !errors.As(err, &je) {
				t.Fatalf("round %d: wave job %s failed without a typed JobError: %v", round, waveID[j], err)
			}
			switch je.Reason {
			case ReasonCancelled, ReasonDeadline, ReasonShed:
			default:
				t.Fatalf("round %d: wave job %s failed with reason %v: %v", round, waveID[j], je.Reason, err)
			}
			failedWave[waveID[j]] = true
		}
		if !failedWave[waveID[2]] { // mode 2 is pre-cancelled
			t.Fatalf("round %d: pre-cancelled wave job succeeded", round)
		}
		totalJobs += waveJobs
		// Failed wave jobs must have published nothing.
		for _, mv := range s.Meta.Views() {
			if failedWave[mv.ProducerJobID] {
				t.Fatalf("round %d: failed wave job %s left published view %s", round, mv.ProducerJobID, mv.Path)
			}
		}
		for _, sv := range s.Store.Views() {
			if failedWave[sv.ProducerJobID] {
				t.Fatalf("round %d: failed wave job %s left file %s in the store", round, sv.ProducerJobID, sv.Path)
			}
		}
		// Store↔metadata consistency held through the wave's retractions.
		for _, mv := range s.Meta.Views() {
			if _, err := s.Store.Get(mv.Path); err != nil {
				t.Fatalf("round %d: after wave, metadata references missing file %s", round, mv.Path)
			}
		}

		// Faults off: the service must be fully live again.
		s.InstallFaults(nil)
		if _, _, locks, _, _ := s.Meta.Stats(); locks != 0 {
			t.Fatalf("round %d: %d build locks wedged after all jobs completed", round, locks)
		}
		follow, err := s.Submit(specB(fmt.Sprintf("r%d-follow", round), instancesPerRound))
		if err != nil {
			t.Fatalf("round %d: clean follow-up failed: %v", round, err)
		}
		if len(follow.Decision.ViewsUsed)+len(follow.Decision.ViewsBuilt) == 0 {
			t.Fatalf("round %d: follow-up neither built nor reused (wedged?)", round)
		}
		totalJobs++

		rec := s.Recovery()
		agg.VertexRetries += rec.VertexRetries
		agg.QuarantinedViews += rec.QuarantinedViews
		agg.DegradedReplans += rec.DegradedReplans
		agg.ReuseSkipped += rec.ReuseSkipped
		agg.Shed += rec.Shed
		agg.DeadlineExceeded += rec.DeadlineExceeded
		agg.Cancelled += rec.Cancelled
		agg.BreakerOpens += rec.BreakerOpens
		agg.BreakerShortCircuits += rec.BreakerShortCircuits
		if fired := in.TotalFired(); fired == 0 {
			t.Fatalf("round %d: injector fired nothing — the soak tested nothing", round)
		}
	}

	if wantFloor := 200; rounds >= 6 && totalJobs < wantFloor {
		t.Fatalf("soak ran %d jobs, acceptance floor is %d", totalJobs, wantFloor)
	}
	// The fault classes must actually have exercised the recovery paths.
	if agg.VertexRetries == 0 {
		t.Error("no vertex retries over the whole soak — retry path untested")
	}
	if agg.ReuseSkipped == 0 {
		t.Error("no degraded lookups over the whole soak — blackout path untested")
	}
	// The lifecycle wave must actually have exercised the lifecycle paths:
	// every round carries one pre-cancelled job and one unmeetable
	// deadline (which sheds or trips mid-run depending on queue state).
	if agg.Cancelled == 0 {
		t.Error("no cancellations over the whole soak — cancel path untested")
	}
	if agg.DeadlineExceeded+agg.Shed == 0 {
		t.Error("no deadline/shed failures over the whole soak — deadline path untested")
	}

	// Goroutine hygiene: every submission goroutine, DAG worker, and
	// context watcher must have wound down. Poll briefly — runtime
	// bookkeeping (GC workers, finished goroutines not yet reaped) settles
	// asynchronously.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+3 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live vs %d at start\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:n])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("chaos soak: %d jobs, recovery=%+v", totalJobs, agg)
}
