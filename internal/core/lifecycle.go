// lifecycle.go implements end-to-end job lifecycle control for the
// service: typed job-failure classification (cancelled / deadline /
// shed / dependency), admission control with bounded in-flight slots
// and deadline-aware load shedding, and Drain for orderly shutdown.
//
// Deadlines are expressed on the simulated logical clock, not wall
// time: a job's completion time is its submission time plus simulated
// latency, so whether a deadline is exceeded is a pure function of the
// plan and the ledger — byte-deterministic across runs. Cancellation
// uses real context.Context plumbing (the executor polls at vertex and
// chunk boundaries), since cancellation is inherently asynchronous.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"cloudviews/internal/breaker"
)

// JobErrorReason classifies why the lifecycle layer failed a job.
type JobErrorReason int

const (
	// ReasonCancelled: the submission context was cancelled mid-flight.
	ReasonCancelled JobErrorReason = iota
	// ReasonDeadline: the job's simulated completion time passed its
	// logical-clock deadline.
	ReasonDeadline
	// ReasonShed: admission control rejected the job before execution —
	// either the queue-time estimate provably missed the deadline, or
	// the service was draining.
	ReasonShed
	// ReasonDependency: a hard dependency (metadata service in strict
	// mode) failed and could not be degraded around.
	ReasonDependency
)

func (r JobErrorReason) String() string {
	switch r {
	case ReasonCancelled:
		return "cancelled"
	case ReasonDeadline:
		return "deadline"
	case ReasonShed:
		return "shed"
	case ReasonDependency:
		return "dependency"
	}
	return fmt.Sprintf("JobErrorReason(%d)", int(r))
}

// JobError is the typed failure the service returns for lifecycle
// outcomes: the job that failed, why, and the underlying cause.
// errors.Is/As reach the cause through Unwrap.
type JobError struct {
	JobID  string
	Reason JobErrorReason
	Err    error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("core: job %s %s: %v", e.JobID, e.Reason, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// ErrDraining is the cause inside the JobError a submission receives
// when the service has begun draining and no longer admits jobs.
var ErrDraining = errors.New("core: service draining, not admitting jobs")

// admission is the in-flight gate in front of submitAt: a bounded slot
// pool (when MaxInFlight > 0) plus the draining latch Drain flips.
// Initialization is lazy (first submission or Drain) so tests may set
// Config.MaxInFlight any time before first use.
type admission struct {
	initOnce sync.Once
	mu       sync.Mutex
	cond     *sync.Cond
	slots    chan struct{} // nil = unbounded
	inFlight int
	draining bool
}

func (a *admission) init(maxInFlight int) {
	a.initOnce.Do(func() {
		a.cond = sync.NewCond(&a.mu)
		if maxInFlight > 0 {
			a.slots = make(chan struct{}, maxInFlight)
		}
	})
}

// enter blocks until an in-flight slot is free (or ctx is done) and
// registers the job. It fails with ErrDraining if the service is
// draining — checked both before and after the slot wait, so a job
// that was queued when Drain began is still turned away.
func (a *admission) enter(ctx context.Context, maxInFlight int) error {
	a.init(maxInFlight)
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return ErrDraining
	}
	a.mu.Unlock()
	if a.slots != nil {
		select {
		case a.slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		if a.slots != nil {
			<-a.slots
		}
		return ErrDraining
	}
	a.inFlight++
	a.mu.Unlock()
	return nil
}

// exit releases the job's slot and wakes Drain when the service runs dry.
func (a *admission) exit() {
	if a.slots != nil {
		<-a.slots
	}
	a.mu.Lock()
	a.inFlight--
	if a.inFlight == 0 {
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// InFlight reports how many submissions are currently executing.
func (s *Service) InFlight() int {
	s.admit.init(s.Config.MaxInFlight)
	s.admit.mu.Lock()
	defer s.admit.mu.Unlock()
	return s.admit.inFlight
}

// Drain stops admitting jobs (subsequent submissions fail with a
// ReasonShed JobError wrapping ErrDraining), waits for every in-flight
// job to run down, and — when journal is non-nil — flushes the metadata
// service's state to it so a restarted service can warm-start. ctx
// bounds the wait; if it expires the service stays draining but the
// remaining in-flight count is reported in the error.
func (s *Service) Drain(ctx context.Context, journal io.Writer) error {
	a := &s.admit
	a.init(s.Config.MaxInFlight)
	a.mu.Lock()
	a.draining = true
	// cond.Wait cannot watch ctx directly; mirror ctx expiry into a
	// broadcast so the wait loop re-checks and gives up.
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		a.cond.Broadcast()
		a.mu.Unlock()
	})
	defer stop()
	for a.inFlight > 0 && ctx.Err() == nil {
		a.cond.Wait()
	}
	left := a.inFlight
	a.mu.Unlock()
	if left > 0 {
		return fmt.Errorf("core: drain interrupted with %d jobs in flight: %w", left, ctx.Err())
	}
	if journal != nil {
		if err := s.Meta.Save(journal); err != nil {
			return fmt.Errorf("core: drain journal flush: %w", err)
		}
	}
	return nil
}

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool {
	s.admit.init(s.Config.MaxInFlight)
	s.admit.mu.Lock()
	defer s.admit.mu.Unlock()
	return s.admit.draining
}

// jobDeadline resolves a submission's absolute logical-clock deadline:
// the explicit per-job deadline wins, else the service default (relative
// to submission time), else none.
func (s *Service) jobDeadline(spec JobSpec, now int64) int64 {
	if spec.Deadline > 0 {
		return spec.Deadline
	}
	if d := s.Config.DefaultDeadline; d > 0 {
		return now + d
	}
	return 0
}

// lifecycleError maps an execution or admission failure onto the typed
// JobError taxonomy and bumps the matching counter. Errors that already
// are JobErrors, and errors outside the taxonomy, pass through.
func (s *Service) lifecycleError(jobID string, err error) error {
	var je *JobError
	if errors.As(err, &je) {
		return err
	}
	switch {
	case errors.Is(err, ErrDraining):
		s.recovery.bump(func() { s.recovery.shed.Add(1) })
		return &JobError{JobID: jobID, Reason: ReasonShed, Err: err}
	case errors.Is(err, context.DeadlineExceeded):
		s.recovery.bump(func() { s.recovery.deadline.Add(1) })
		return &JobError{JobID: jobID, Reason: ReasonDeadline, Err: err}
	case errors.Is(err, context.Canceled):
		s.recovery.bump(func() { s.recovery.cancelled.Add(1) })
		return &JobError{JobID: jobID, Reason: ReasonCancelled, Err: err}
	}
	var oe *breaker.OpenError
	if errors.As(err, &oe) {
		return &JobError{JobID: jobID, Reason: ReasonDependency, Err: err}
	}
	return err
}
