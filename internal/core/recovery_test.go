package core

import (
	"errors"

	"strings"
	"testing"

	"cloudviews/internal/fault"
	"cloudviews/internal/plan"
	"cloudviews/internal/storage"
)

// transientOnce is an exec.FaultHook that crashes the first attempt of one
// operator kind with a retryable error.
type transientOnce struct{ kind plan.OpKind }

type retryableErr struct{ msg string }

func (e retryableErr) Error() string   { return e.msg }
func (e retryableErr) Transient() bool { return true }

func (h transientOnce) VertexDone(_, _ string, k plan.OpKind, attempt int) error {
	if k == h.kind && attempt == 0 {
		return retryableErr{"transient crash"}
	}
	return nil
}

func (h transientOnce) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

// TestTransientVertexFailureRecoversViaRetry: a single failing vertex
// attempt does not fail the job — the retry absorbs it, the result is
// validated against the clean baseline, and the retry surfaces in both the
// job result and the service counters.
func TestTransientVertexFailureRecoversViaRetry(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)

	s.Exec.Faults = transientOnce{plan.OpExchange}
	defer func() { s.Exec.Faults = nil }()
	r, err := s.Submit(specA("a1", 1))
	if err != nil {
		t.Fatalf("retry should have absorbed the crash: %v", err)
	}
	if r.Result.Retries == 0 {
		t.Error("job reports no retries")
	}
	if got := s.Recovery().VertexRetries; got == 0 {
		t.Error("service retry counter not bumped")
	}
	// ValidateResults (on by default in newService) already byte-checked
	// the output against a clean baseline.
}

// TestCorruptViewQuarantineAndReplan: a view whose payload was silently
// corrupted at build time fails its consumer's checksum verification; the
// consumer quarantines it (metadata deregistration + file deletion) and
// transparently re-optimizes, finishing with correct results.
func TestCorruptViewQuarantineAndReplan(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)

	// Builder runs with certain corruption on every view write.
	s.Store.Faults = corruptAlways{}
	ra, err := s.Submit(specA("a1", 1))
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	if len(ra.Decision.ViewsBuilt) != 1 {
		t.Fatalf("builder built %d views, want 1", len(ra.Decision.ViewsBuilt))
	}
	s.Store.Faults = nil
	viewsBefore := s.Meta.Views()
	if len(viewsBefore) != 1 {
		t.Fatalf("registered views = %d, want 1", len(viewsBefore))
	}

	// Consumer trips the checksum, quarantines, and replans.
	rb, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatalf("consumer should survive the corrupt view: %v", err)
	}
	if len(rb.Decision.QuarantinedViews) != 1 || rb.Decision.QuarantinedViews[0] != viewsBefore[0].Path {
		t.Errorf("QuarantinedViews = %v, want [%s]", rb.Decision.QuarantinedViews, viewsBefore[0].Path)
	}
	if rec := s.Recovery(); rec.QuarantinedViews != 1 || rec.DegradedReplans != 1 {
		t.Errorf("recovery counters = %+v", rec)
	}
	// The quarantined view is gone from both layers.
	for _, v := range s.Meta.Views() {
		if v.Path == viewsBefore[0].Path {
			t.Error("quarantined view still registered")
		}
	}
	if _, err := s.Store.Get(viewsBefore[0].Path); err == nil {
		t.Error("quarantined view file still stored")
	}
	// Progress: a later job can rebuild the view cleanly.
	rc, err := s.Submit(specA("a2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Decision.ViewsBuilt)+len(rc.Decision.ViewsUsed) == 0 {
		t.Error("rebuild after quarantine is wedged")
	}
}

// corruptAlways corrupts every view write, injects nothing else.
type corruptAlways struct{}

func (corruptAlways) ReadView(string) error          { return nil }
func (corruptAlways) WriteView(string) (bool, error) { return true, nil }

// TestMissingViewDegrades: a view registered in metadata whose file has
// vanished (the orphan direction) is quarantined by its consumer instead
// of failing the job.
func TestMissingViewDegrades(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	views := s.Meta.Views()
	if len(views) != 1 {
		t.Fatalf("views = %d, want 1", len(views))
	}
	// Simulate the orphan: the file disappears, the registration stays.
	s.Store.Delete(views[0].Path)

	rb, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatalf("consumer should survive the vanished view: %v", err)
	}
	if len(rb.Decision.QuarantinedViews) != 1 {
		t.Errorf("QuarantinedViews = %v", rb.Decision.QuarantinedViews)
	}
	if len(s.Meta.Views()) != 1 {
		t.Errorf("replanned job should have rebuilt the view, meta has %d", len(s.Meta.Views()))
	}
}

// TestMetadataBlackoutSkipsReuse: when the metadata lookup fails, the job
// runs its original plan — counted, flagged in the decision, never fatal —
// unless MetadataStrict demands otherwise.
func TestMetadataBlackoutSkipsReuse(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}

	s.Meta.Faults = blackout{}
	rb, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatalf("blackout must degrade, not abort: %v", err)
	}
	if !rb.Decision.MetaUnavailable {
		t.Error("decision not flagged MetaUnavailable")
	}
	if len(rb.Decision.ViewsUsed)+len(rb.Decision.ViewsBuilt) != 0 {
		t.Error("degraded job still touched views")
	}
	if got := s.Recovery().ReuseSkipped; got != 1 {
		t.Errorf("ReuseSkipped = %d, want 1", got)
	}

	// Strict mode turns the same blackout into a job error.
	s.Config.MetadataStrict = true
	if _, err := s.Submit(specB("b2", 1)); err == nil || !strings.Contains(err.Error(), "metadata") {
		t.Fatalf("strict mode should abort on blackout, got %v", err)
	}
	s.Config.MetadataStrict = false
	s.Meta.Faults = nil

	// Service recovered: reuse works again.
	rc, err := s.Submit(specB("b3", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Decision.ViewsUsed) != 1 {
		t.Error("reuse did not resume after the blackout")
	}
}

type blackout struct{}

func (blackout) Lookup(string) error { return errors.New("metadata unreachable") }

// TestInstallFaultsWiresEveryLayer: one injector reaches exec, storage,
// metadata, and the scheduler, and uninstalls cleanly.
func TestInstallFaultsWiresEveryLayer(t *testing.T) {
	s := newService(t)
	s.Sched = newSchedulerWithVC("vc1", 100)
	in := fault.NewInjector(fault.Config{Seed: 1})
	s.InstallFaults(in)
	if s.Exec.Faults == nil || s.Store.Faults == nil || s.Meta.Faults == nil || s.Sched.Faults == nil {
		t.Fatal("injector not wired into every layer")
	}
	s.InstallFaults(nil)
	if s.Exec.Faults != nil || s.Store.Faults != nil || s.Meta.Faults != nil || s.Sched.Faults != nil {
		t.Fatal("injector not removed from every layer")
	}
}

// TestStorageReclaimDeregisters is the satellite regression at the service
// level: utility-based reclamation initiated on the Store directly must
// drop the metadata registration too — no orphaned registrations.
func TestStorageReclaimDeregisters(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	if len(s.Meta.Views()) != 1 {
		t.Fatal("view not registered")
	}
	purged := s.Store.ReclaimLowestUtility(1, func(*storage.View) float64 { return 0 })
	if len(purged) != 1 {
		t.Fatalf("reclaimed %d views, want 1", len(purged))
	}
	if len(s.Meta.Views()) != 0 {
		t.Error("reclaimed view still registered in metadata")
	}
	// Direct Store.Purge must deregister too.
	if _, err := s.Submit(specA("a2", 1)); err != nil {
		t.Fatal(err)
	}
	if len(s.Meta.Views()) != 1 {
		t.Fatal("rebuild failed")
	}
	s.Store.Purge(1 << 61)
	if len(s.Meta.Views()) != 0 {
		t.Error("purged view still registered in metadata")
	}
}
