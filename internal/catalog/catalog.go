// Package catalog tracks the base tables of the simulated cluster: their
// schemas, their partitioned data, and — critically for recurring jobs —
// the GUID of the currently delivered data version.
//
// Recurring jobs read the "same" logical inputs every instance, but each
// instance processes freshly delivered data. Delivering a new version gives
// the table a new GUID, which flows into every precise signature computed
// over it and thereby invalidates stale materialized views automatically.
package catalog

import (
	"fmt"
	"sync"

	"cloudviews/internal/data"
)

// Catalog is a concurrent registry of base tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*data.Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*data.Table{}}
}

// Register adds or replaces a table. The table's Name is the key.
func (c *Catalog) Register(t *data.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
}

// Get returns the current version of the named table.
func (c *Catalog) Get(name string) (*data.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// GUID returns the GUID of the current version of the named table, or ""
// if the table is unknown.
func (c *Catalog) GUID(name string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if t, ok := c.tables[name]; ok {
		return t.GUID
	}
	return ""
}

// Names returns the registered table names (unordered).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// Deliver installs a new data version for the named table: new GUID, new
// rows. It models the arrival of the next recurring batch.
func (c *Catalog) Deliver(name, guid string, fill func(t *data.Table)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	next := data.NewTable(name, guid, old.Schema, len(old.Partitions))
	if fill != nil {
		fill(next)
	}
	c.tables[name] = next
	return nil
}
