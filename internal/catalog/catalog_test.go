package catalog

import (
	"sync"
	"testing"

	"cloudviews/internal/data"
)

func schema() data.Schema {
	return data.Schema{{Name: "k", Kind: data.KindInt}, {Name: "v", Kind: data.KindString}}
}

func TestRegisterGetGUID(t *testing.T) {
	c := New()
	tab := data.NewTable("t", "v1", schema(), 2)
	c.Register(tab)
	got, err := c.Get("t")
	if err != nil || got != tab {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if c.GUID("t") != "v1" {
		t.Errorf("GUID = %q", c.GUID("t"))
	}
	if c.GUID("missing") != "" {
		t.Error("missing table should have empty GUID")
	}
	if _, err := c.Get("missing"); err == nil {
		t.Error("Get of missing table should error")
	}
	if n := c.Names(); len(n) != 1 || n[0] != "t" {
		t.Errorf("Names = %v", n)
	}
}

func TestDeliverReplacesVersion(t *testing.T) {
	c := New()
	c.Register(data.NewTable("t", "v1", schema(), 3))
	err := c.Deliver("t", "v2", func(tab *data.Table) {
		rr := 0
		tab.AppendHash(data.Row{data.Int(1), data.String_("a")}, nil, &rr)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get("t")
	if got.GUID != "v2" {
		t.Errorf("GUID after deliver = %q", got.GUID)
	}
	if got.NumRows() != 1 {
		t.Errorf("rows after deliver = %d", got.NumRows())
	}
	if len(got.Partitions) != 3 {
		t.Errorf("partition count not preserved: %d", len(got.Partitions))
	}
	if err := c.Deliver("missing", "v1", nil); err == nil {
		t.Error("Deliver to missing table should error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	c.Register(data.NewTable("t", "v0", schema(), 1))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.GUID("t")
				c.Get("t")
			}
		}()
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Deliver("t", "v", nil)
			}
		}(i)
	}
	wg.Wait()
}
