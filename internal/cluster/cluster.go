// Package cluster simulates the job-service cluster fabric: a simulated
// clock and token-based virtual-cluster admission.
//
// A virtual cluster (VC) is a tenant with an allocated compute capacity
// measured in tokens (paper §2.1 footnote). Jobs demand tokens for their
// lifetime; when a VC is saturated, newly submitted jobs queue. The
// scheduler is deliberately simple — capacity accounting over simulated
// time — because what the experiments need from it is (a) a shared clock
// for lock expiry and view expiry, and (b) realistic concurrent-arrival
// semantics for the job-coordination experiments (§6.5).
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Clock is a monotonically advancing simulated time in abstract seconds.
// The zero value starts at time 0 and is ready to use.
type Clock struct {
	mu  sync.Mutex
	now int64
}

// Now returns the current simulated time.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d int64) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t int64) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// interval is a token reservation over [start, end).
type interval struct {
	start, end int64
	tokens     int
}

// VC is one virtual cluster: a token capacity plus its reservation ledger.
//
// Live reservations — those that can still constrain a future admission —
// are kept sorted by ascending end time; reservations whose end has
// passed the admission clock are retired to history, which only
// Utilization scans. Admission therefore stays O(live²) in the number of
// concurrently running jobs instead of O(total-jobs-ever²): after 100k
// simulated jobs the live ledger holds only the handful still running.
type VC struct {
	Name     string
	Capacity int
	resv     []interval // live, sorted by ascending end
	history  []interval // retired, ascending end (reporting only)
}

// retire moves reservations that ended at or before now out of the live
// ledger. A reservation with end <= now cannot overlap any candidate
// window of an admission at time >= now, so retirement is lossless for
// Admit; Utilization still sees the full history. Admission times are
// assumed non-decreasing per VC (the simulated clock is monotone) — an
// out-of-order Admit dated before already-retired reservations would see
// their capacity as free.
func (vc *VC) retire(now int64) {
	i := 0
	for i < len(vc.resv) && vc.resv[i].end <= now {
		i++
	}
	if i > 0 {
		vc.history = append(vc.history, vc.resv[:i]...)
		vc.resv = vc.resv[:copy(vc.resv, vc.resv[i:])]
	}
}

// insert adds a reservation keeping the live ledger sorted by end time.
func (vc *VC) insert(r interval) {
	i := sort.Search(len(vc.resv), func(i int) bool { return vc.resv[i].end > r.end })
	vc.resv = append(vc.resv, interval{})
	copy(vc.resv[i+1:], vc.resv[i:])
	vc.resv[i] = r
}

// FaultHook is the cluster's fault-injection seam (see internal/fault):
// AdmitDelay returns extra simulated seconds a job's admission is pushed
// back by (preemption / queue pressure); 0 means no disturbance.
type FaultHook interface {
	AdmitDelay(vc string, at int64) int64
}

// ObsHook is the cluster scheduler's observability seam (see
// internal/obs): Admitted fires once per successful admission with the
// reserved start time and the VC's live-ledger depth after the insert (a
// queue-depth proxy). It is invoked under the scheduler's lock — hooks
// must not call back into the scheduler. A nil hook costs nothing.
type ObsHook interface {
	Admitted(vc string, tokens int, at, start int64, depth int)
}

// Scheduler admits jobs to VCs under token capacity over simulated time.
type Scheduler struct {
	// Faults, if set, can delay admissions. Production runs leave it nil.
	Faults FaultHook

	// Obs, if set, observes admissions (see ObsHook).
	Obs ObsHook

	mu  sync.Mutex
	vcs map[string]*VC
}

// NewScheduler returns a scheduler with no VCs.
func NewScheduler() *Scheduler {
	return &Scheduler{vcs: map[string]*VC{}}
}

// AddVC registers a virtual cluster with the given token capacity.
func (s *Scheduler) AddVC(name string, capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vcs[name] = &VC{Name: name, Capacity: capacity}
}

// VCNames returns the registered VCs, sorted.
func (s *Scheduler) VCNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.vcs))
	for n := range s.vcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Admit reserves tokens on the VC for a job of the given duration,
// submitted at time at. It returns the start time — the earliest instant
// ≥ at with enough free capacity — or an error for unknown VCs or demands
// exceeding the VC's total capacity.
func (s *Scheduler) Admit(vcName string, tokens int, at, duration int64) (start int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vc, ok := s.vcs[vcName]
	if !ok {
		return 0, fmt.Errorf("cluster: unknown VC %q", vcName)
	}
	if tokens > vc.Capacity {
		return 0, fmt.Errorf("cluster: job wants %d tokens, VC %s has %d", tokens, vcName, vc.Capacity)
	}
	if tokens < 1 {
		tokens = 1
	}
	if duration < 1 {
		duration = 1
	}
	// An injected preemption delays the effective submission instant; the
	// reservation search proceeds normally from the pushed-back time.
	if s.Faults != nil {
		if d := s.Faults.AdmitDelay(vcName, at); d > 0 {
			at += d
		}
	}
	vc.retire(at)
	start = vc.earliestFit(tokens, at, duration)
	vc.insert(interval{start: start, end: start + duration, tokens: tokens})
	if s.Obs != nil {
		s.Obs.Admitted(vcName, tokens, at, start, len(vc.resv))
	}
	return start, nil
}

// EarliestStart estimates, without reserving anything, the earliest time a
// job of the given token demand and duration submitted at time at could
// start on the VC. Admission control uses it to shed jobs whose deadline
// is provably unreachable before any work is done on their behalf. The
// estimate is exact for the ledger as it stands — an actual Admit at the
// same instant returns the same start (injected admission delays excluded,
// since shedding should reflect real queue pressure, not injected chaos) —
// but is only a lower bound on the eventual start if competing jobs are
// admitted in between.
func (s *Scheduler) EarliestStart(vcName string, tokens int, at, duration int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vc, ok := s.vcs[vcName]
	if !ok {
		return 0, fmt.Errorf("cluster: unknown VC %q", vcName)
	}
	if tokens > vc.Capacity {
		return 0, fmt.Errorf("cluster: job wants %d tokens, VC %s has %d", tokens, vcName, vc.Capacity)
	}
	if tokens < 1 {
		tokens = 1
	}
	if duration < 1 {
		duration = 1
	}
	vc.retire(at)
	return vc.earliestFit(tokens, at, duration), nil
}

// LiveReservations returns the number of reservations on the VC still
// holding tokens at time now (started or future, not yet ended). Lifecycle
// tests use it to prove cancelled and shed jobs left nothing behind.
func (s *Scheduler) LiveReservations(vcName string, now int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	vc, ok := s.vcs[vcName]
	if !ok {
		return 0
	}
	n := 0
	for _, r := range vc.resv {
		if r.end > now {
			n++
		}
	}
	return n
}

// earliestFit scans candidate start times: the submission time and the end
// of each live reservation after it. The live ledger is already sorted by
// end, so the candidate list comes out sorted for free.
func (vc *VC) earliestFit(tokens int, at, duration int64) int64 {
	candidates := make([]int64, 1, len(vc.resv)+1)
	candidates[0] = at
	for _, r := range vc.resv {
		if r.end > at {
			candidates = append(candidates, r.end)
		}
	}
	for _, c := range candidates {
		if vc.fits(tokens, c, c+duration) {
			return c
		}
	}
	// Unreachable: the last candidate (after every reservation ends) fits.
	return candidates[len(candidates)-1]
}

// fits reports whether adding tokens over [start, end) stays within
// capacity at every reservation boundary.
func (vc *VC) fits(tokens int, start, end int64) bool {
	points := []int64{start}
	for _, r := range vc.resv {
		if r.start >= start && r.start < end {
			points = append(points, r.start)
		}
	}
	for _, p := range points {
		used := 0
		for _, r := range vc.resv {
			if r.start <= p && p < r.end {
				used += r.tokens
			}
		}
		if used+tokens > vc.Capacity {
			return false
		}
	}
	return true
}

// Utilization returns the token-seconds reserved on the VC in [from, to).
// It scans retired history as well as the live ledger, so compaction never
// changes reported utilization.
func (s *Scheduler) Utilization(vcName string, from, to int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	vc, ok := s.vcs[vcName]
	if !ok {
		return 0
	}
	var total int64
	for _, ledger := range [2][]interval{vc.history, vc.resv} {
		for _, r := range ledger {
			lo, hi := r.start, r.end
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi > lo {
				total += (hi - lo) * int64(r.tokens)
			}
		}
	}
	return total
}
