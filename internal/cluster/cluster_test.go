package cluster

import (
	"sync"
	"testing"
)

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Error("clock should start at 0")
	}
	c.Advance(5)
	c.Advance(-3) // ignored
	if c.Now() != 5 {
		t.Errorf("now = %d", c.Now())
	}
	c.AdvanceTo(3) // past: ignored
	if c.Now() != 5 {
		t.Error("AdvanceTo went backwards")
	}
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Errorf("now = %d", c.Now())
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(1)
				c.Now()
			}
		}()
	}
	wg.Wait()
	if c.Now() != 1000 {
		t.Errorf("now = %d, want 1000", c.Now())
	}
}

func TestAdmitImmediateWhenFree(t *testing.T) {
	s := NewScheduler()
	s.AddVC("vc1", 10)
	start, err := s.Admit("vc1", 4, 100, 50)
	if err != nil || start != 100 {
		t.Fatalf("start=%d err=%v", start, err)
	}
	// Second job fits concurrently (4+4 <= 10).
	start, err = s.Admit("vc1", 4, 100, 50)
	if err != nil || start != 100 {
		t.Fatalf("concurrent start=%d err=%v", start, err)
	}
	// Third job (4 tokens) exceeds capacity until one finishes at 150.
	start, err = s.Admit("vc1", 4, 100, 50)
	if err != nil || start != 150 {
		t.Fatalf("queued start=%d err=%v", start, err)
	}
}

func TestAdmitErrors(t *testing.T) {
	s := NewScheduler()
	s.AddVC("vc1", 2)
	if _, err := s.Admit("nope", 1, 0, 1); err == nil {
		t.Error("unknown VC should error")
	}
	if _, err := s.Admit("vc1", 5, 0, 1); err == nil {
		t.Error("oversized demand should error")
	}
	// Degenerate demands are clamped, not rejected.
	if start, err := s.Admit("vc1", 0, 7, 0); err != nil || start != 7 {
		t.Errorf("clamped admit start=%d err=%v", start, err)
	}
}

func TestQueueingCascade(t *testing.T) {
	s := NewScheduler()
	s.AddVC("vc1", 1)
	// Three serial jobs of length 10 on a 1-token VC, all arriving at 0.
	var starts []int64
	for i := 0; i < 3; i++ {
		st, err := s.Admit("vc1", 1, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		starts = append(starts, st)
	}
	want := []int64{0, 10, 20}
	for i := range want {
		if starts[i] != want[i] {
			t.Errorf("job %d start = %d, want %d", i, starts[i], want[i])
		}
	}
}

func TestVCIsolation(t *testing.T) {
	s := NewScheduler()
	s.AddVC("a", 1)
	s.AddVC("b", 1)
	if _, err := s.Admit("a", 1, 0, 100); err != nil {
		t.Fatal(err)
	}
	// VC b is unaffected by a's saturation.
	start, err := s.Admit("b", 1, 0, 10)
	if err != nil || start != 0 {
		t.Errorf("b start=%d err=%v", start, err)
	}
	names := s.VCNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("VCNames = %v", names)
	}
}

func TestUtilization(t *testing.T) {
	s := NewScheduler()
	s.AddVC("vc1", 10)
	if _, err := s.Admit("vc1", 2, 0, 10); err != nil { // 20 token-seconds
		t.Fatal(err)
	}
	if _, err := s.Admit("vc1", 3, 5, 10); err != nil { // 30 token-seconds
		t.Fatal(err)
	}
	if got := s.Utilization("vc1", 0, 100); got != 50 {
		t.Errorf("utilization = %d, want 50", got)
	}
	// Clipped window.
	if got := s.Utilization("vc1", 0, 5); got != 10 {
		t.Errorf("clipped utilization = %d, want 10", got)
	}
	if got := s.Utilization("missing", 0, 10); got != 0 {
		t.Error("unknown VC utilization should be 0")
	}
}

func TestAdmitFindsGapAtBoundary(t *testing.T) {
	s := NewScheduler()
	s.AddVC("vc1", 2)
	// Two overlapping 1-token jobs with different ends.
	if _, err := s.Admit("vc1", 1, 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit("vc1", 1, 0, 20); err != nil {
		t.Fatal(err)
	}
	// A 2-token job must wait for both: starts at 20.
	start, err := s.Admit("vc1", 2, 0, 5)
	if err != nil || start != 20 {
		t.Errorf("start=%d err=%v, want 20", start, err)
	}
	// A 1-token job can slot in at 10 when the first ends.
	start, err = s.Admit("vc1", 1, 0, 5)
	if err != nil || start != 10 {
		t.Errorf("start=%d err=%v, want 10", start, err)
	}
}

// delayHook pushes every admission back by a fixed amount.
type delayHook struct{ d int64 }

func (h delayHook) AdmitDelay(string, int64) int64 { return h.d }

// TestAdmitFaultDelay: an injected preemption delays the job's start but
// never breaks capacity accounting.
func TestAdmitFaultDelay(t *testing.T) {
	s := NewScheduler()
	s.AddVC("vc", 10)
	s.Faults = delayHook{d: 5}
	start, err := s.Admit("vc", 10, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if start != 105 {
		t.Fatalf("start = %d, want 105 (delayed admission)", start)
	}
	// A second full-capacity job queues behind the first from its own
	// delayed instant.
	start2, err := s.Admit("vc", 10, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if start2 != 115 {
		t.Fatalf("second start = %d, want 115", start2)
	}
}
