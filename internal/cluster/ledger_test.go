package cluster

import (
	"math/rand"
	"testing"
)

// bruteVC is a reference admission model that keeps every reservation
// forever and re-derives earliest fit from scratch — the behavior the
// compacting ledger must reproduce exactly.
type bruteVC struct {
	capacity int
	resv     []interval
}

func (b *bruteVC) admit(tokens int, at, duration int64) int64 {
	if tokens < 1 {
		tokens = 1
	}
	if duration < 1 {
		duration = 1
	}
	candidates := []int64{at}
	for _, r := range b.resv {
		if r.end > at {
			candidates = append(candidates, r.end)
		}
	}
	var best int64
	found := false
	for _, c := range candidates {
		if !b.fits(tokens, c, c+duration) {
			continue
		}
		if !found || c < best {
			best = c
			found = true
		}
	}
	b.resv = append(b.resv, interval{start: best, end: best + duration, tokens: tokens})
	return best
}

func (b *bruteVC) fits(tokens int, start, end int64) bool {
	points := []int64{start}
	for _, r := range b.resv {
		if r.start >= start && r.start < end {
			points = append(points, r.start)
		}
	}
	for _, p := range points {
		used := 0
		for _, r := range b.resv {
			if r.start <= p && p < r.end {
				used += r.tokens
			}
		}
		if used+tokens > b.capacity {
			return false
		}
	}
	return true
}

// TestAdmitMatchesBruteForce drives the compacting scheduler and the
// keep-everything reference through the same random sequence of admissions
// with non-decreasing submission times and demands start times agree on
// every job. Utilization is cross-checked too, proving retirement to
// history loses nothing.
func TestAdmitMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		s.AddVC("vc", 8)
		ref := &bruteVC{capacity: 8}

		at := int64(0)
		for i := 0; i < 400; i++ {
			at += int64(r.Intn(4)) // non-decreasing, frequent repeats
			tokens := 1 + r.Intn(8)
			duration := int64(1 + r.Intn(12))
			got, err := s.Admit("vc", tokens, at, duration)
			if err != nil {
				t.Fatalf("seed %d job %d: %v", seed, i, err)
			}
			want := ref.admit(tokens, at, duration)
			if got != want {
				t.Fatalf("seed %d job %d (tokens=%d at=%d dur=%d): start=%d, reference=%d",
					seed, i, tokens, at, duration, got, want)
			}
		}

		var wantUtil int64
		for _, r := range ref.resv {
			wantUtil += (r.end - r.start) * int64(r.tokens)
		}
		if got := s.Utilization("vc", 0, 1<<40); got != wantUtil {
			t.Fatalf("seed %d: utilization=%d, reference=%d", seed, got, wantUtil)
		}
	}
}

// TestLedgerCompaction checks that ended reservations actually leave the
// live ledger: after many short jobs admitted over advancing time, the
// live list holds only the still-running tail, not the full history.
func TestLedgerCompaction(t *testing.T) {
	s := NewScheduler()
	s.AddVC("vc", 4)
	const jobs = 10000
	for i := 0; i < jobs; i++ {
		at := int64(i * 10)
		if _, err := s.Admit("vc", 2, at, 5); err != nil {
			t.Fatal(err)
		}
	}
	vc := s.vcs["vc"]
	if len(vc.resv) > 4 {
		t.Errorf("live ledger holds %d reservations after %d ended jobs; compaction is not happening", len(vc.resv), jobs)
	}
	if total := len(vc.resv) + len(vc.history); total != jobs {
		t.Errorf("resv+history = %d, want %d (reservations lost)", total, jobs)
	}
	// Full-window utilization still sees every job: 10000 × 2 tokens × 5s.
	if got := s.Utilization("vc", 0, 1<<40); got != jobs*2*5 {
		t.Errorf("utilization = %d, want %d", got, jobs*2*5)
	}
}

// BenchmarkAdmitSteadyState measures Admit cost in the steady state the
// compaction exists for: a long stream of jobs over advancing time where
// only a bounded window is ever live. Before the sorted-ledger rewrite
// this was O(total-jobs-admitted) per call and degraded without bound.
func BenchmarkAdmitSteadyState(b *testing.B) {
	s := NewScheduler()
	s.AddVC("vc", 16)
	// Pre-load history so the benchmark measures post-100k-job behavior.
	at := int64(0)
	for i := 0; i < 100000; i++ {
		at += 3
		if _, err := s.Admit("vc", 1+i%8, at, int64(2+i%7)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += 3
		if _, err := s.Admit("vc", 1+i%8, at, int64(2+i%7)); err != nil {
			b.Fatal(err)
		}
	}
}
