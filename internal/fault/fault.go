// Package fault is the deterministic fault-injection layer of the job
// service (the testable half of the paper's §6.1 fault-tolerance story).
//
// One Injector plugs into every layer through the small hook interfaces
// those layers export — executor vertices (exec.FaultHook), the view store
// (storage.FaultHook), metadata lookups (metadata.FaultHook), and cluster
// admission (cluster.FaultHook) — and injects the fault classes production
// analytics services treat as routine: operator crashes, storage
// read/write errors, silent view-payload corruption, metadata-service
// blackouts, and slow or preempted stages.
//
// Every decision is a pure function of (seed, fault class, site key,
// occurrence index): no clocks, no global RNG, no dependence on goroutine
// scheduling. Sites keyed by job and vertex therefore fire identically on
// the serial and parallel execution paths, and a chaos run with a given
// seed injects a reproducible fault schedule. (For sites shared across
// concurrent jobs — a view path read by many consumers — the occurrence
// index is claimed in arrival order, so *which* job absorbs a given fault
// follows scheduling; the rates and the recovery invariants do not.)
//
// Injected failures are transient: they implement Transient() true, which
// tells the executor's vertex-retry loop that re-running the work can
// succeed. Corruption is deliberately not an error at injection time — it
// is silent (a bit flip in the view's encoded payload bytes), and surfaces
// later as a storage.CorruptError when a consumer verifies the view's
// checksum over those bytes.
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cloudviews/internal/plan"
)

// Kind classifies an injected fault.
type Kind int

const (
	// KindVertexCrash crashes an operator attempt after its kernel ran.
	KindVertexCrash Kind = iota
	// KindVertexSlow adds simulated latency to a vertex (slow stage).
	KindVertexSlow
	// KindStorageRead fails a view read.
	KindStorageRead
	// KindStorageWrite fails a view write before anything is installed.
	KindStorageWrite
	// KindCorruptWrite silently corrupts a view's stored payload — the
	// store flips a bit in the encoded columnar bytes underneath the
	// recorded checksum.
	KindCorruptWrite
	// KindMetaBlackout fails a metadata-service lookup.
	KindMetaBlackout
	// KindAdmitDelay delays a job's cluster admission (preemption).
	KindAdmitDelay
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindVertexCrash:
		return "vertex-crash"
	case KindVertexSlow:
		return "vertex-slow"
	case KindStorageRead:
		return "storage-read"
	case KindStorageWrite:
		return "storage-write"
	case KindCorruptWrite:
		return "corrupt-write"
	case KindMetaBlackout:
		return "meta-blackout"
	case KindAdmitDelay:
		return "admit-delay"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Error is one injected failure. It is transient by construction: the
// injector re-rolls per attempt or occurrence, so retrying the failed
// operation can succeed — which is exactly what the executor's vertex
// retry and the frontend's degradation ladder exploit.
type Error struct {
	Kind Kind
	Site string
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s", e.Kind, e.Site)
}

// Transient marks injected faults as retryable (see exec.Transient).
func (e *Error) Transient() bool { return true }

// Config sets per-site firing probabilities (0 disables a class) and the
// magnitudes of the non-error disturbances.
type Config struct {
	// Seed scopes the whole schedule; two injectors with the same Seed and
	// Config make identical decisions at identical sites.
	Seed int64

	// VertexCrash is the probability that one operator attempt crashes
	// after its kernel completes (per attempt — retries re-roll).
	VertexCrash float64
	// VertexSlow is the probability a vertex straggles; SlowDelay is the
	// simulated latency added when it does.
	VertexSlow float64
	SlowDelay  float64
	// StorageRead / StorageWrite are per-operation view store failure
	// probabilities.
	StorageRead  float64
	StorageWrite float64
	// CorruptWrite is the probability a created view's payload is silently
	// corrupted on disk (detected later by checksum verification).
	CorruptWrite float64
	// MetaBlackout is the per-lookup probability the metadata service is
	// unreachable.
	MetaBlackout float64
	// AdmitDelay is the per-admission probability of a preemption delay of
	// up to AdmitDelayMax simulated seconds.
	AdmitDelay    float64
	AdmitDelayMax int64
}

// Counts reports how many faults of each kind actually fired.
type Counts struct {
	VertexCrashes int64
	SlowVertices  int64
	StorageReads  int64
	StorageWrites int64
	CorruptWrites int64
	MetaBlackouts int64
	AdmitDelays   int64
}

// Injector makes the fault decisions. It is safe for concurrent use by
// every layer of one or more services.
type Injector struct {
	cfg   Config
	fired [numKinds]atomic.Int64

	// occ claims occurrence indexes for sites whose callers carry no
	// attempt number of their own (storage paths, metadata lookups,
	// admissions).
	mu  sync.Mutex
	occ map[string]uint64
}

// NewInjector returns an injector for the given schedule.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, occ: map[string]uint64{}}
}

// Counts snapshots the per-kind fired counters.
func (in *Injector) Counts() Counts {
	return Counts{
		VertexCrashes: in.fired[KindVertexCrash].Load(),
		SlowVertices:  in.fired[KindVertexSlow].Load(),
		StorageReads:  in.fired[KindStorageRead].Load(),
		StorageWrites: in.fired[KindStorageWrite].Load(),
		CorruptWrites: in.fired[KindCorruptWrite].Load(),
		MetaBlackouts: in.fired[KindMetaBlackout].Load(),
		AdmitDelays:   in.fired[KindAdmitDelay].Load(),
	}
}

// TotalFired returns the total number of injected faults of every kind.
func (in *Injector) TotalFired() int64 {
	var n int64
	for i := range in.fired {
		n += in.fired[i].Load()
	}
	return n
}

// next claims the occurrence index for a keyed site.
func (in *Injector) next(key string) uint64 {
	in.mu.Lock()
	n := in.occ[key]
	in.occ[key] = n + 1
	in.mu.Unlock()
	return n
}

// decide is the pure decision function: hash (seed, kind, site, occurrence)
// into [0,1) and compare against p. fnv-1a over the key material feeds a
// splitmix64 finalizer so neighboring occurrences decorrelate.
func (in *Injector) decide(kind Kind, site string, occ uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for _, b := range []byte(site) {
		mix(b)
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(in.cfg.Seed) >> (8 * i)))
		mix(byte(occ >> (8 * i)))
	}
	mix(byte(kind))
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if float64(h>>11)/(1<<53) >= p {
		return false
	}
	in.fired[kind].Add(1)
	return true
}

// ---- exec.FaultHook -------------------------------------------------------

// VertexDone implements the executor hook: it is consulted after each
// operator attempt and crashes it with the configured probability. The
// attempt number is part of the decision key, so a retried vertex re-rolls.
func (in *Injector) VertexDone(job, site string, kind plan.OpKind, attempt int) error {
	if in.decide(KindVertexCrash, "vertex|"+job+"|"+site, uint64(attempt), in.cfg.VertexCrash) {
		return &Error{Kind: KindVertexCrash, Site: job + "/" + site}
	}
	return nil
}

// VertexDelay implements the executor hook's slow-stage side: a straggling
// vertex gains SlowDelay simulated seconds of latency.
func (in *Injector) VertexDelay(job, site string, kind plan.OpKind) float64 {
	if in.decide(KindVertexSlow, "slow|"+job+"|"+site, 0, in.cfg.VertexSlow) {
		return in.cfg.SlowDelay
	}
	return 0
}

// ---- storage.FaultHook ----------------------------------------------------

// ReadView implements the view-store hook: transient read failure.
func (in *Injector) ReadView(path string) error {
	if in.decide(KindStorageRead, "sread|"+path, in.next("sread|"+path), in.cfg.StorageRead) {
		return &Error{Kind: KindStorageRead, Site: path}
	}
	return nil
}

// WriteView implements the view-store hook consulted when a view is about
// to be created: err fails the write outright (transient — the retried
// vertex re-rolls); corrupt=true lets the write proceed but silently
// damages the stored payload, to be caught by checksum verification on
// consume.
func (in *Injector) WriteView(path string) (corrupt bool, err error) {
	if in.decide(KindStorageWrite, "swrite|"+path, in.next("swrite|"+path), in.cfg.StorageWrite) {
		return false, &Error{Kind: KindStorageWrite, Site: path}
	}
	if in.decide(KindCorruptWrite, "corrupt|"+path, 0, in.cfg.CorruptWrite) {
		return true, nil
	}
	return false, nil
}

// ---- metadata.FaultHook ---------------------------------------------------

// Lookup implements the metadata hook: a fired decision simulates the
// service being unreachable for one RelevantViews round trip.
func (in *Injector) Lookup(vc string) error {
	if in.decide(KindMetaBlackout, "meta|"+vc, in.next("meta|"+vc), in.cfg.MetaBlackout) {
		return &Error{Kind: KindMetaBlackout, Site: vc}
	}
	return nil
}

// ---- cluster.FaultHook ----------------------------------------------------

// AdmitDelay implements the cluster hook: a preempted admission is pushed
// back by a deterministic slice of AdmitDelayMax.
func (in *Injector) AdmitDelay(vc string, at int64) int64 {
	occ := in.next("admit|" + vc)
	if !in.decide(KindAdmitDelay, "admit|"+vc, occ, in.cfg.AdmitDelay) {
		return 0
	}
	if in.cfg.AdmitDelayMax <= 0 {
		return 0
	}
	// Derive the delay magnitude from the same key material.
	return 1 + int64((occ*2654435761)%uint64(in.cfg.AdmitDelayMax))
}
