package fault

import (
	"errors"
	"testing"

	"cloudviews/internal/plan"
)

// TestDeterministicDecisions pins the core property: decisions are a pure
// function of (seed, kind, site, occurrence), independent of call order.
func TestDeterministicDecisions(t *testing.T) {
	cfg := Config{Seed: 42, VertexCrash: 0.5}
	sites := []string{"0/Extract", "1/Filter", "2/HashJoin", "3/HashGbAgg", "4/Output"}
	type key struct {
		site    string
		attempt int
	}
	// a visits sites forward, b backward: per-site outcomes must match —
	// the vertex decision depends only on (seed, site, attempt), never on
	// the order the scheduler happened to reach the sites in.
	collect := func(reverse bool) map[key]bool {
		in := NewInjector(cfg)
		out := map[key]bool{}
		for attempt := 0; attempt < 4; attempt++ {
			for i := range sites {
				s := sites[i]
				if reverse {
					s = sites[len(sites)-1-i]
				}
				out[key{s, attempt}] = in.VertexDone("job", s, plan.OpFilter, attempt) != nil
			}
		}
		return out
	}
	a, b := collect(false), collect(true)
	fired := 0
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("site %s attempt %d: outcome depends on visit order", k.site, k.attempt)
		}
		if v {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("p=0.5 over 20 sites fired nothing")
	}
}

// TestSeedChangesSchedule verifies different seeds produce different
// schedules (the injector is not degenerate).
func TestSeedChangesSchedule(t *testing.T) {
	outcomes := func(seed int64) []bool {
		in := NewInjector(Config{Seed: seed, VertexCrash: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			site := string(rune('a'+i%26)) + "/op"
			out = append(out, in.VertexDone("j", site, plan.OpFilter, i/26) != nil)
		}
		return out
	}
	a, b := outcomes(1), outcomes(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestRatesApproximate checks the decision hash is roughly uniform: at
// p=0.25 over many sites the firing rate lands in a wide sane band.
func TestRatesApproximate(t *testing.T) {
	in := NewInjector(Config{Seed: 7, StorageRead: 0.25})
	const n = 4000
	fired := 0
	for i := 0; i < n; i++ {
		if in.ReadView("/views/sig/"+string(rune('a'+i%26))+".ss") != nil {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.18 || rate > 0.32 {
		t.Fatalf("rate %.3f far from 0.25", rate)
	}
	if got := in.Counts().StorageReads; got != int64(fired) {
		t.Fatalf("counter %d != observed %d", got, fired)
	}
}

// TestZeroConfigNeverFires: an injector with zero probabilities is inert.
func TestZeroConfigNeverFires(t *testing.T) {
	in := NewInjector(Config{Seed: 3})
	for i := 0; i < 100; i++ {
		if in.VertexDone("j", "0/Filter", plan.OpFilter, i) != nil {
			t.Fatal("crash fired at p=0")
		}
		if in.ReadView("/p") != nil {
			t.Fatal("read fault fired at p=0")
		}
		if _, err := in.WriteView("/p"); err != nil {
			t.Fatal("write fault fired at p=0")
		}
		if in.Lookup("vc") != nil {
			t.Fatal("blackout fired at p=0")
		}
		if in.AdmitDelay("vc", 0) != 0 {
			t.Fatal("delay fired at p=0")
		}
		if in.VertexDelay("j", "0/Filter", plan.OpFilter) != 0 {
			t.Fatal("slow fired at p=0")
		}
	}
	if in.TotalFired() != 0 {
		t.Fatal("counters moved at p=0")
	}
}

// TestInjectedErrorsAreTransient: the executor's retry loop keys off the
// Transient marker; every injected error must carry it, even wrapped.
func TestInjectedErrorsAreTransient(t *testing.T) {
	err := error(&Error{Kind: KindStorageRead, Site: "/p"})
	wrapped := errors.Join(errors.New("ctx"), err)
	var tr interface{ Transient() bool }
	if !errors.As(wrapped, &tr) || !tr.Transient() {
		t.Fatal("injected error lost its Transient marker when wrapped")
	}
}

// TestRetryReRolls: a site that fires at attempt 0 must be able to pass at
// a later attempt — otherwise retries could never succeed.
func TestRetryReRolls(t *testing.T) {
	in := NewInjector(Config{Seed: 11, VertexCrash: 0.5})
	recoveredSomewhere := false
	for i := 0; i < 50; i++ {
		site := "s" + string(rune('a'+i))
		if in.VertexDone("j", site, plan.OpFilter, 0) != nil &&
			in.VertexDone("j", site, plan.OpFilter, 1) == nil {
			recoveredSomewhere = true
		}
	}
	if !recoveredSomewhere {
		t.Fatal("no site recovered on attempt 1 — retries would be futile")
	}
}

// TestAdmitDelayBounded: injected preemption delays stay within the
// configured cap and are non-negative.
func TestAdmitDelayBounded(t *testing.T) {
	in := NewInjector(Config{Seed: 5, AdmitDelay: 1, AdmitDelayMax: 40})
	for i := 0; i < 200; i++ {
		d := in.AdmitDelay("vc1", int64(i))
		if d < 1 || d > 40 {
			t.Fatalf("delay %d outside [1,40]", d)
		}
	}
}
