package obs

import (
	"sort"
	"strconv"
	"sync"
)

// Span is one node of a job's trace tree: a named interval on the
// simulated logical clock with string attributes and child spans. Start
// and End are logical ticks (float64 because simulated latency is —
// integer ticks render without a decimal point).
//
// A span tree is built single-writer (the job's submission goroutine owns
// it; concurrently produced vertex events are buffered by the owner and
// attached after the executor joins), so Span itself carries no locks.
type Span struct {
	Name     string
	Start    float64
	End      float64
	Attrs    []Attr
	Children []*Span
}

// Set appends (or replaces) an attribute on the span. A nil receiver is a
// no-op, so callers holding a span from a tracing-disabled path need no
// guard.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Child appends a new child span and returns it. A nil receiver returns
// nil without appending, so a whole disabled span tree collapses to no-ops.
func (s *Span) Child(name string, start, end float64, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start, End: end, Attrs: attrs}
	s.Children = append(s.Children, c)
	return c
}

// Trace is one job's span tree.
type Trace struct {
	JobID string
	Root  *Span
}

// clone deep-copies the span so normalization never mutates a stored
// trace (concurrent exporters would race on the in-place sort).
func (s *Span) clone() *Span {
	c := &Span{Name: s.Name, Start: s.Start, End: s.End}
	if len(s.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), s.Attrs...)
	}
	if len(s.Children) > 0 {
		c.Children = make([]*Span, len(s.Children))
		for i, ch := range s.Children {
			c.Children[i] = ch.clone()
		}
	}
	return c
}

// attrKey renders the attribute list as one comparison key. Attrs are
// already sorted by the time it is used.
func attrKey(attrs []Attr) string {
	var b []byte
	for _, a := range attrs {
		b = append(b, a.Key...)
		b = append(b, '=')
		b = append(b, a.Value...)
		b = append(b, ';')
	}
	return string(b)
}

// normalize sorts the span's attributes by key and its children by
// (start, name, attributes), recursively. Child arrival order depends on
// scheduling (vertex events complete in any order under the DAG
// scheduler); the sort key is built only from deterministic simulated
// quantities, so the normalized tree — and therefore the JSON export — is
// identical across execution paths.
func (s *Span) normalize() {
	sort.SliceStable(s.Attrs, func(i, j int) bool { return s.Attrs[i].Key < s.Attrs[j].Key })
	for _, c := range s.Children {
		c.normalize()
	}
	sort.SliceStable(s.Children, func(i, j int) bool {
		a, b := s.Children[i], s.Children[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return attrKey(a.Attrs) < attrKey(b.Attrs)
	})
}

// JSON renders the trace as stable, order-normalized JSON bytes: the tree
// is deep-copied, normalized, and marshaled by hand with shortest-round-
// trip float formatting, so equal traces produce equal bytes — the
// property the serial-vs-DAG determinism tests compare directly.
func (t *Trace) JSON() []byte {
	root := t.Root
	if root != nil {
		root = root.clone()
		root.normalize()
	}
	b := make([]byte, 0, 1024)
	b = append(b, `{"job":`...)
	b = strconv.AppendQuote(b, t.JobID)
	b = append(b, `,"root":`...)
	b = appendSpan(b, root)
	b = append(b, '}')
	return b
}

func appendSpan(b []byte, s *Span) []byte {
	if s == nil {
		return append(b, "null"...)
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, s.Name)
	b = append(b, `,"start":`...)
	b = appendTick(b, s.Start)
	b = append(b, `,"end":`...)
	b = appendTick(b, s.End)
	if len(s.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range s.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, a.Key)
			b = append(b, ':')
			b = strconv.AppendQuote(b, a.Value)
		}
		b = append(b, '}')
	}
	if len(s.Children) > 0 {
		b = append(b, `,"children":[`...)
		for i, c := range s.Children {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendSpan(b, c)
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendTick formats a logical tick: integer ticks render without a
// decimal point, fractional ones with Go's shortest round-trip form.
func appendTick(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// DefaultTraceCapacity is how many finished job traces a TraceStore
// retains when the owner does not size it explicitly.
const DefaultTraceCapacity = 256

// TraceStore is a bounded ring of finished job traces keyed by job ID:
// putting the capacity+1st trace evicts the oldest. Re-putting a job ID
// replaces its trace in place (a replayed job supersedes the old run).
// Safe for concurrent use.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order, oldest first
	byJob map[string]*Trace
}

// NewTraceStore returns a store retaining up to capacity traces
// (capacity <= 0 selects DefaultTraceCapacity).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{cap: capacity, byJob: map[string]*Trace{}}
}

// Put stores a finished trace, evicting the oldest when full. The store
// takes ownership: callers must not mutate the trace after Put.
func (ts *TraceStore) Put(t *Trace) {
	if t == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.byJob[t.JobID]; ok {
		ts.byJob[t.JobID] = t
		return
	}
	for len(ts.order) >= ts.cap {
		evict := ts.order[0]
		ts.order = ts.order[:copy(ts.order, ts.order[1:])]
		delete(ts.byJob, evict)
	}
	ts.order = append(ts.order, t.JobID)
	ts.byJob[t.JobID] = t
}

// Get returns the stored trace for jobID, if present.
func (ts *TraceStore) Get(jobID string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byJob[jobID]
	return t, ok
}

// Len reports how many traces are resident.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.byJob)
}
