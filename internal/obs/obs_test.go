package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs.completed")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if got := r.Counter("jobs.completed").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("sched.queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("sched.queue_depth").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("job.latency_ticks")
	for _, v := range []int64{0, 1, 2, 3, 100, -4} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["job.latency_ticks"]
	if hs.Count != 6 || hs.Sum != 106 {
		t.Fatalf("histogram count/sum = %d/%d, want 6/106", hs.Count, hs.Sum)
	}
	// Buckets: v=0 and v=-4 land in le=0; v=1 in le=1; 2,3 in le=3; 100 in le=127.
	want := []BucketCount{{Le: 0, Count: 2}, {Le: 1, Count: 1}, {Le: 3, Count: 2}, {Le: 127, Count: 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if snap.Counters["jobs.completed"] != 3 || snap.Gauges["sched.queue_depth"] != 5 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
}

// TestRegistryConcurrent registers and bumps instruments from many
// goroutines while snapshots run — the copy-on-write index must never
// lose a registration or a count (run under -race in check.sh).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter(fmt.Sprintf("c.%d", i%17)).Inc()
				r.Gauge(fmt.Sprintf("g.%d", w)).Set(int64(i))
				r.Histogram("h.shared").Observe(int64(i))
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for i := 0; i < 17; i++ {
		total += snap.Counters[fmt.Sprintf("c.%d", i)]
	}
	if total != workers*perWorker {
		t.Fatalf("counter total = %d, want %d", total, workers*perWorker)
	}
	if snap.Histograms["h.shared"].Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", snap.Histograms["h.shared"].Count, workers*perWorker)
	}
}

// TestSnapshotJSONDeterministic pins that a MetricsSnapshot marshals to
// identical bytes across repeated snapshots of unchanged state.
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(fmt.Sprintf("m.%02d", i)).Add(int64(i))
		r.Histogram(fmt.Sprintf("h.%02d", i)).Observe(int64(i * 3))
	}
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON drifted:\n%s\n%s", a, b)
	}
}

// buildTrace assembles the same logical tree with children appended in
// the given order — simulating scheduler-dependent arrival.
func buildTrace(order []int) *Trace {
	root := &Span{Name: "submit", Start: 0, End: 100}
	ex := root.Child("execute", 1, 90, A("attempt", "1"))
	vertices := []*Span{
		{Name: "Filter", Start: 5, End: 9, Attrs: []Attr{A("site", "1/Filter"), A("rows", "10")}},
		{Name: "Extract", Start: 1, End: 5, Attrs: []Attr{A("site", "0/Extract")}},
		{Name: "Filter", Start: 5, End: 7, Attrs: []Attr{A("site", "2/Filter")}},
	}
	for _, i := range order {
		ex.Children = append(ex.Children, vertices[i].clone())
	}
	root.Child("publish", 90, 90, A("path", "/views/x"))
	return &Trace{JobID: "job-1", Root: root}
}

func TestTraceJSONOrderNormalized(t *testing.T) {
	a := buildTrace([]int{0, 1, 2}).JSON()
	b := buildTrace([]int{2, 0, 1}).JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("normalized export differs by arrival order:\n%s\n%s", a, b)
	}
	// The export must be valid JSON and byte-stable across repeat calls.
	var decoded map[string]any
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a)
	}
	tr := buildTrace([]int{1, 2, 0})
	if !bytes.Equal(tr.JSON(), tr.JSON()) {
		t.Fatal("repeated JSON() of one trace differs")
	}
}

func TestTraceTickFormatting(t *testing.T) {
	tr := &Trace{JobID: "j", Root: &Span{Name: "submit", Start: 3, End: 4.5}}
	got := string(tr.JSON())
	want := `{"job":"j","root":{"name":"submit","start":3,"end":4.5}}`
	if got != want {
		t.Fatalf("JSON = %s, want %s", got, want)
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2)
	for _, id := range []string{"a", "b", "c"} {
		ts.Put(&Trace{JobID: id, Root: &Span{Name: "submit"}})
	}
	if _, ok := ts.Get("a"); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	if _, ok := ts.Get("c"); !ok {
		t.Fatal("newest trace missing")
	}
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	// Replacing a resident job does not evict.
	ts.Put(&Trace{JobID: "b", Root: &Span{Name: "submit", Start: 9}})
	tr, ok := ts.Get("b")
	if !ok || tr.Root.Start != 9 {
		t.Fatal("re-put should replace the resident trace")
	}
	if ts.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", ts.Len())
	}
}
