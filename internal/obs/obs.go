// Package obs is the service's zero-dependency observability layer:
// per-job span traces plus a registry of named metrics, both expressed on
// the *simulated* logical clock so that everything they report is as
// deterministic as the cost model producing it.
//
// Tracing: every job gets a span tree (submit → admission → optimize →
// schedule → execute with per-vertex children → publish/retract). Spans
// carry logical start/end ticks and string attributes (signatures, cache
// hit/miss verdicts, breaker state, fault injections). Export is
// order-normalized — children are sorted by (start, name, attributes)
// before marshaling — so the JSON bytes for a fixed seed are identical
// whether the job ran on the serial reference walk or the parallel DAG
// scheduler, where completion order differs. Traces live in a bounded
// TraceStore ring keyed by job ID.
//
// Metrics: a sharded registry of counters, gauges, and logical-tick
// histograms. The per-shard instrument index is published copy-on-write
// (the same pattern as the metadata service's state pointer), so the hot
// path — look up an instrument, bump an atomic — never takes a lock, and
// Snapshot reads a consistent index without blocking writers. Instruments
// are cheap enough that callers may also resolve them once and hold the
// pointer.
//
// The package has no dependencies beyond the standard library and is
// wired into the layers (core, exec, storage, metadata, cluster) through
// small hook seams with nil-able hooks, exactly like internal/fault: a
// service that uninstalls its observer pays only a nil check.
package obs

// Attr is one key/value attribute on a span. Values are strings so export
// is trivially stable; callers format numbers with strconv (never %v on
// floats, whose formatting could drift).
type Attr struct {
	Key   string
	Value string
}

// A returns an Attr — sugar for building attribute lists in place.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }
