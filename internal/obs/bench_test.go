package obs

import (
	"fmt"
	"testing"
)

// BenchmarkTraceEmit prices building a realistic job trace (a submit root
// with an execute span holding 24 vertex children) and exporting it as
// normalized JSON — the full per-job tracing cost excluding the job
// itself. scripts/bench.sh records it in BENCH_obs.json.
func BenchmarkTraceEmit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := &Span{Name: "submit", Start: 0, End: 500, Attrs: []Attr{A("job", "bench"), A("vc", "vc1")}}
		root.Child("admission", 0, 0)
		root.Child("optimize", 0, 0, A("views_used", "1"), A("views_built", "1"))
		ex := root.Child("execute", 0, 480, A("attempt", "1"))
		for v := 0; v < 24; v++ {
			ex.Child("Filter", float64(v), float64(v+3),
				A("site", fmt.Sprintf("%d/Filter", v)), A("rows", "1000"))
		}
		root.Child("publish", 480, 480, A("path", "/views/sig/bench.ss"))
		tr := &Trace{JobID: "bench", Root: root}
		if len(tr.JSON()) == 0 {
			b.Fatal("empty export")
		}
	}
}

// BenchmarkSnapshot prices one Registry.Snapshot over a service-sized
// instrument population (32 counters, 8 gauges, 4 histograms) — the cost
// a monitoring poll pays. scripts/bench.sh records it in BENCH_obs.json.
func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter(fmt.Sprintf("counter.%02d", i)).Add(int64(i))
	}
	for i := 0; i < 8; i++ {
		r.Gauge(fmt.Sprintf("gauge.%d", i)).Set(int64(i))
	}
	for i := 0; i < 4; i++ {
		h := r.Histogram(fmt.Sprintf("hist.%d", i))
		for v := int64(1); v < 1000; v *= 3 {
			h.Observe(v)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := r.Snapshot()
		if len(snap.Counters) != 32 {
			b.Fatalf("lost counters: %d", len(snap.Counters))
		}
	}
}

// BenchmarkCounterAdd prices the hot-path instrument bump (resolved
// pointer, atomic add) — what an installed observer costs per event.
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("hot")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
