package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// regShardCount spreads the instrument index over independently published
// shards so concurrent first-registrations of unrelated names never
// contend. A power of two keeps the shard pick a mask.
const regShardCount = 16

// Counter is a monotonically increasing count. The value sits alone on
// its cache line (the padding) so two hot counters bumped from different
// goroutines never false-share.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by n (negative n is ignored — counters only
// go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time level that can move both ways.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds v=0,
// bucket i holds 2^(i-1) ≤ v < 2^i. 33 buckets cover every logical-tick
// duration a simulated job can produce with one overflow bucket at the
// top.
const histBuckets = 33

// Histogram accumulates logical-tick durations into power-of-two buckets.
// Observations are lock-free atomic bumps; negative values clamp to zero.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration (in logical ticks).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[b].Add(1)
}

// BucketCount is one non-empty histogram bucket in a snapshot: Le is the
// bucket's inclusive upper bound in ticks (2^i - 1), Count how many
// observations landed in it.
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// MetricsSnapshot is a point-in-time read of every registered instrument,
// keyed by name. Maps marshal with sorted keys and bucket lists are
// ascending, so encoding/json output is deterministic for deterministic
// values.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// instruments is one shard's immutable name index. Registration publishes
// a fresh copy (copy-on-write); readers load the pointer and index the
// maps lock-free.
type instruments struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

type regShard struct {
	mu  sync.Mutex // serializes registration only
	idx atomic.Pointer[instruments]
}

// Registry is a sharded, copy-on-write index of named instruments. The
// zero value is not usable; call NewRegistry. Instrument lookup by name is
// lock-free; first registration of a name copies and republishes its
// shard's index. Safe for concurrent use.
type Registry struct {
	shards [regShardCount]regShard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].idx.Store(&instruments{
			counters: map[string]*Counter{},
			gauges:   map[string]*Gauge{},
			hists:    map[string]*Histogram{},
		})
	}
	return r
}

// shardFor picks the shard by FNV-1a over the instrument name.
func (r *Registry) shardFor(name string) *regShard {
	const prime32 = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * prime32
	}
	return &r.shards[h&(regShardCount-1)]
}

// Counter returns the named counter, registering it on first use. Hot
// paths should resolve once and hold the pointer; the lookup itself is
// still lock-free.
func (r *Registry) Counter(name string) *Counter {
	sh := r.shardFor(name)
	if c, ok := sh.idx.Load().counters[name]; ok {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.idx.Load()
	if c, ok := cur.counters[name]; ok {
		return c
	}
	c := &Counter{}
	next := &instruments{
		counters: make(map[string]*Counter, len(cur.counters)+1),
		gauges:   cur.gauges,
		hists:    cur.hists,
	}
	for k, v := range cur.counters {
		next.counters[k] = v
	}
	next.counters[name] = c
	sh.idx.Store(next)
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	sh := r.shardFor(name)
	if g, ok := sh.idx.Load().gauges[name]; ok {
		return g
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.idx.Load()
	if g, ok := cur.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	next := &instruments{
		counters: cur.counters,
		gauges:   make(map[string]*Gauge, len(cur.gauges)+1),
		hists:    cur.hists,
	}
	for k, v := range cur.gauges {
		next.gauges[k] = v
	}
	next.gauges[name] = g
	sh.idx.Store(next)
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	sh := r.shardFor(name)
	if h, ok := sh.idx.Load().hists[name]; ok {
		return h
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.idx.Load()
	if h, ok := cur.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	next := &instruments{
		counters: cur.counters,
		gauges:   cur.gauges,
		hists:    make(map[string]*Histogram, len(cur.hists)+1),
	}
	for k, v := range cur.hists {
		next.hists[k] = v
	}
	next.hists[name] = h
	sh.idx.Store(next)
	return h
}

// Snapshot reads every instrument into one MetricsSnapshot. Each shard's
// index is loaded once (the copy-on-write publish makes it internally
// consistent: an instrument never vanishes and the set read is the set
// that existed at the load); values are atomic loads.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for i := range r.shards {
		idx := r.shards[i].idx.Load()
		for name, c := range idx.counters {
			snap.Counters[name] = c.Value()
		}
		for name, g := range idx.gauges {
			snap.Gauges[name] = g.Value()
		}
		for name, h := range idx.hists {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
			for b := range h.buckets {
				if n := h.buckets[b].Load(); n > 0 {
					le := int64(1)<<uint(b) - 1
					hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: n})
				}
			}
			sort.Slice(hs.Buckets, func(i, j int) bool { return hs.Buckets[i].Le < hs.Buckets[j].Le })
			snap.Histograms[name] = hs
		}
	}
	return snap
}
