#!/bin/sh
# bench_analyzer.sh — run the analyzer scale-out benchmarks and write
# BENCH_analyzer.json.
#
# The analyzer mines the workload repository offline, so its cost scales
# with repository size, not per-job; the sweep measures the end-to-end
# parallel pipeline (Analyze), the aggregation fold, and the overlap
# statistics pass at 10k/100k/500k synthetic observations, alongside the
# pinned serial reference walks over the same repositories. The "seed"
# block holds the serial-path numbers measured before the scale-out work
# (min of passes on the same method) — identical math, so seed vs the
# parallel "current" entries is the scale-out speedup, and seed vs the
# Serial entries shows the unchanged reference.
#
# All families run in ONE go test process per pass: the synthetic
# repositories (up to 500k observations) are generated once per process
# and cached across benchmarks, and regenerating them per family would
# dominate the sweep.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_analyzer.json
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

BENCHTIME="${BENCHTIME:-1s}"
PASSES="${BENCH_ANALYZER_PASSES:-2}"

pass=1
while [ "$pass" -le "$PASSES" ]; do
	go test -run='^$' -bench='^BenchmarkAnalyzer' \
		-benchmem -benchtime="$BENCHTIME" ./internal/analyzer/ | tee -a "$TMP"
	pass=$((pass + 1))
done

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "passes": %s,\n' "$PASSES"
	cat <<'SEED'
  "seed": {
    "BenchmarkAnalyzerSerial/obs=10000":   {"ns_op": 17173753, "bytes_op": 27959240, "allocs_op": 17971},
    "BenchmarkAnalyzerSerial/obs=100000":  {"ns_op": 342901523, "bytes_op": 295690442, "allocs_op": 119829},
    "BenchmarkAnalyzerSerial/obs=500000":  {"ns_op": 2443544404, "bytes_op": 1609642053, "allocs_op": 527992},
    "BenchmarkAnalyzerAggregateSerial/obs=10000":  {"ns_op": 12154422, "bytes_op": 27134000, "allocs_op": 17868},
    "BenchmarkAnalyzerAggregateSerial/obs=100000": {"ns_op": 275536417, "bytes_op": 293072242, "allocs_op": 119578},
    "BenchmarkAnalyzerAggregateSerial/obs=500000": {"ns_op": 2652090083, "bytes_op": 1601126274, "allocs_op": 527305},
    "BenchmarkAnalyzerOverlapStatsSerial/obs=10000":  {"ns_op": 11435386, "bytes_op": 26884784, "allocs_op": 7339},
    "BenchmarkAnalyzerOverlapStatsSerial/obs=100000": {"ns_op": 346911068, "bytes_op": 293193752, "allocs_op": 18673},
    "BenchmarkAnalyzerOverlapStatsSerial/obs=500000": {"ns_op": 2771015086, "bytes_op": 1601146341, "allocs_op": 27420}
  },
SEED
	awk '
		BEGIN {
			# Seed ns/op: the serial path before the scale-out work. The
			# parallel benchmark at size N is compared against the serial
			# seed at size N (same math, same repository).
			seed["BenchmarkAnalyzerAnalyze/obs=10000"] = 17173753
			seed["BenchmarkAnalyzerAnalyze/obs=100000"] = 342901523
			seed["BenchmarkAnalyzerAnalyze/obs=500000"] = 2443544404
			seed["BenchmarkAnalyzerSerial/obs=10000"] = 17173753
			seed["BenchmarkAnalyzerSerial/obs=100000"] = 342901523
			seed["BenchmarkAnalyzerSerial/obs=500000"] = 2443544404
			seed["BenchmarkAnalyzerAggregate/obs=10000"] = 12154422
			seed["BenchmarkAnalyzerAggregate/obs=100000"] = 275536417
			seed["BenchmarkAnalyzerAggregate/obs=500000"] = 2652090083
			seed["BenchmarkAnalyzerAggregateSerial/obs=10000"] = 12154422
			seed["BenchmarkAnalyzerAggregateSerial/obs=100000"] = 275536417
			seed["BenchmarkAnalyzerAggregateSerial/obs=500000"] = 2652090083
			seed["BenchmarkAnalyzerOverlapStats/obs=10000"] = 11435386
			seed["BenchmarkAnalyzerOverlapStats/obs=100000"] = 346911068
			seed["BenchmarkAnalyzerOverlapStats/obs=500000"] = 2771015086
			seed["BenchmarkAnalyzerOverlapStatsSerial/obs=10000"] = 11435386
			seed["BenchmarkAnalyzerOverlapStatsSerial/obs=100000"] = 346911068
			seed["BenchmarkAnalyzerOverlapStatsSerial/obs=500000"] = 2771015086
		}
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = bytes = allocs = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				else if ($i == "B/op") bytes = $(i-1)
				else if ($i == "allocs/op") allocs = $(i-1)
			}
			if (ns == "") next
			if (!(name in minNs) || ns + 0 < minNs[name] + 0) {
				minNs[name] = ns
				minBytes[name] = bytes
				minAllocs[name] = allocs
			}
			if (!(name in seen)) { seen[name] = 1; order[n++] = name }
		}
		END {
			printf "  \"current\": {\n"
			for (i = 0; i < n; i++) {
				nm = order[i]
				line = sprintf("    \"%s\": {\"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s", \
					nm, minNs[nm], minBytes[nm], minAllocs[nm])
				if (nm in seed)
					line = line sprintf(", \"speedup_vs_seed\": %.2f", seed[nm] / minNs[nm])
				line = line "}"
				printf "%s%s\n", line, (i < n-1 ? "," : "")
			}
			printf "  }\n"
		}
	' "$TMP"
	printf '}\n'
} > "$OUT"

echo "wrote $OUT"
