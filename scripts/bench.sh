#!/bin/sh
# bench.sh — run the frontend hot-path benchmarks and write
# BENCH_frontend.json, then the data-plane kernel benchmarks and write
# BENCH_exec.json.
#
# The frontend (signature computation, metadata lookup, optimizer rewrite)
# runs on every submitted job, so its per-job cost is tracked as a checked-in
# artifact. The "seed" block holds the numbers from before the fast-path work
# (single-pass hashing, interning, snapshot metadata reads, lazy-clone
# optimizer) for comparison; "current" is re-measured by this script.
# BenchmarkMetadataLookupParallel runs at -cpu=1,4 to show the lock-free
# snapshot read path scaling with GOMAXPROCS.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_frontend.json
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

BENCHTIME="${BENCHTIME:-2s}"

go test -run='^$' -bench='^BenchmarkSignature$|^BenchmarkAllSubgraphs$' \
	-benchmem -benchtime="$BENCHTIME" ./internal/signature/ | tee -a "$TMP"
go test -run='^$' -bench='^BenchmarkOptimizeFrontend$' \
	-benchmem -benchtime="$BENCHTIME" ./internal/optimizer/ | tee -a "$TMP"
go test -run='^$' -bench='^BenchmarkMetadataLookup' \
	-benchmem -benchtime="$BENCHTIME" -cpu=1,4 ./internal/metadata/ | tee -a "$TMP"
go test -run='^$' -bench='^BenchmarkConcurrentSubmit$' -benchtime=3x . | tee -a "$TMP"

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	cat <<'SEED'
  "seed": {
    "BenchmarkSignature":                {"ns_op": 20318, "bytes_op": 9304, "allocs_op": 169},
    "BenchmarkAllSubgraphs":             {"ns_op": 8911, "bytes_op": 3624, "allocs_op": 72},
    "BenchmarkOptimizeFrontend/noreuse": {"ns_op": 23069, "bytes_op": 13080, "allocs_op": 150},
    "BenchmarkOptimizeFrontend/use":     {"ns_op": 15448, "bytes_op": 9424, "allocs_op": 92},
    "BenchmarkOptimizeFrontend/build":   {"ns_op": 32537, "bytes_op": 17152, "allocs_op": 226},
    "BenchmarkMetadataLookupParallel":   {"ns_op": 4113, "bytes_op": 6608, "allocs_op": 11},
    "BenchmarkMetadataLookupSerial":     {"ns_op": 4275, "bytes_op": 6608, "allocs_op": 11},
    "BenchmarkConcurrentSubmit":         {"jobs_per_sec": 2026}
  },
SEED
	awk '
		/^Benchmark/ {
			name = $1
			ns = bytes = allocs = jps = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				else if ($i == "B/op") bytes = $(i-1)
				else if ($i == "allocs/op") allocs = $(i-1)
				else if ($i == "jobs/s") jps = $(i-1)
			}
			line = sprintf("    \"%s\": {", name)
			sep = ""
			if (ns != "")     { line = line sep "\"ns_op\": " ns; sep = ", " }
			if (bytes != "")  { line = line sep "\"bytes_op\": " bytes; sep = ", " }
			if (allocs != "") { line = line sep "\"allocs_op\": " allocs; sep = ", " }
			if (jps != "")    { line = line sep "\"jobs_per_sec\": " jps; sep = ", " }
			line = line "}"
			lines[n++] = line
		}
		END {
			printf "  \"current\": {\n"
			for (i = 0; i < n; i++)
				printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
			printf "  }\n"
		}
	' "$TMP"
	printf '}\n'
} > "$OUT"

echo "wrote $OUT"

# ---------------------------------------------------------------------------
# Data-plane kernel benchmarks → BENCH_exec.json.
#
# Each benchmark family (join, hash agg, exchange, sort, project emit,
# TPC-DS end-to-end) runs in its own `go test` process so one family's
# heap churn cannot skew another's GC pacing, and the whole sweep runs
# BENCH_EXEC_PASSES times with the per-benchmark minimum recorded —
# single-shot numbers on a shared box swing 10-20% with ambient noise.
# The "seed" block holds the numbers from before the partition-parallel
# kernel work (map-backed join build and agg table, per-row make() on
# every emit path, serial scatter and sort), measured with the same
# per-family isolation and min-of-passes method. The ExecFilter seed was
# measured just before the expression compiler landed (tree-walking
# Expr.Eval per row), so its speedup_vs_seed isolates the compiled-
# evaluator win on the filter kernel.
# ---------------------------------------------------------------------------

EXEC_OUT=BENCH_exec.json
EXEC_TMP="$(mktemp)"
trap 'rm -f "$TMP" "$EXEC_TMP"' EXIT

PASSES="${BENCH_EXEC_PASSES:-2}"

pass=1
while [ "$pass" -le "$PASSES" ]; do
	for fam in ExecJoin ExecHashAgg ExecExchange ExecSort ExecFilter ExecProjectEmit ExecTPCDS; do
		go test -run='^$' -bench="^Benchmark${fam}\$" \
			-benchmem -benchtime="$BENCHTIME" ./internal/exec/ | tee -a "$EXEC_TMP"
	done
	# Lifecycle overhead probe: the cost of rejecting a pre-cancelled
	# submission. Every cooperative cancellation checkpoint on the happy
	# path is the same single ctx.Err() poll this path exercises, so a
	# regression here flags checkpoint cost creeping into the kernels
	# above (which now all carry vertex/chunk-boundary polls). No seed
	# entry: the benchmark landed with the lifecycle work itself.
	go test -run='^$' -bench='^BenchmarkSubmitCancelled$' \
		-benchmem -benchtime="$BENCHTIME" ./internal/core/ | tee -a "$EXEC_TMP"
	pass=$((pass + 1))
done

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "passes": %s,\n' "$PASSES"
	cat <<'SEED'
  "seed": {
    "BenchmarkExecJoin/parts=4": {"ns_op": 41265824, "bytes_op": 39168922, "allocs_op": 110163},
    "BenchmarkExecJoin/parts=16": {"ns_op": 35721975, "bytes_op": 35868122, "allocs_op": 110333},
    "BenchmarkExecJoin/parts=64": {"ns_op": 39578642, "bytes_op": 34126298, "allocs_op": 110850},
    "BenchmarkExecHashAgg/parts=4": {"ns_op": 30832744, "bytes_op": 9094871, "allocs_op": 100139},
    "BenchmarkExecHashAgg/parts=16": {"ns_op": 28546618, "bytes_op": 8651895, "allocs_op": 100279},
    "BenchmarkExecHashAgg/parts=64": {"ns_op": 25556065, "bytes_op": 8684789, "allocs_op": 100782},
    "BenchmarkExecExchange/parts=4": {"ns_op": 14640552, "bytes_op": 13912256, "allocs_op": 124},
    "BenchmarkExecExchange/parts=16": {"ns_op": 13727452, "bytes_op": 11690488, "allocs_op": 280},
    "BenchmarkExecExchange/parts=64": {"ns_op": 14406692, "bytes_op": 11482048, "allocs_op": 446},
    "BenchmarkExecSort/parts=4": {"ns_op": 176606736, "bytes_op": 4802993, "allocs_op": 47},
    "BenchmarkExecSort/parts=16": {"ns_op": 177370650, "bytes_op": 4803280, "allocs_op": 47},
    "BenchmarkExecSort/parts=64": {"ns_op": 170079896, "bytes_op": 4804688, "allocs_op": 47},
    "BenchmarkExecFilter/parts=4": {"ns_op": 18418638, "bytes_op": 2141145, "allocs_op": 61},
    "BenchmarkExecFilter/parts=16": {"ns_op": 17302801, "bytes_op": 2190970, "allocs_op": 73},
    "BenchmarkExecFilter/parts=64": {"ns_op": 17396355, "bytes_op": 2174201, "allocs_op": 121},
    "BenchmarkExecProjectEmit/parts=4": {"ns_op": 22731693, "bytes_op": 17619353, "allocs_op": 100045},
    "BenchmarkExecProjectEmit/parts=16": {"ns_op": 24282005, "bytes_op": 17652697, "allocs_op": 100057},
    "BenchmarkExecProjectEmit/parts=64": {"ns_op": 24315650, "bytes_op": 17860313, "allocs_op": 100105},
    "BenchmarkExecTPCDS/parts=4": {"ns_op": 81160989, "bytes_op": 53697793, "allocs_op": 170489},
    "BenchmarkExecTPCDS/parts=16": {"ns_op": 74422854, "bytes_op": 49773497, "allocs_op": 171143},
    "BenchmarkExecTPCDS/parts=64": {"ns_op": 80710513, "bytes_op": 44491961, "allocs_op": 173157}
  },
SEED
	awk '
		BEGIN {
			seed["BenchmarkExecJoin/parts=4"] = 41265824
			seed["BenchmarkExecJoin/parts=16"] = 35721975
			seed["BenchmarkExecJoin/parts=64"] = 39578642
			seed["BenchmarkExecHashAgg/parts=4"] = 30832744
			seed["BenchmarkExecHashAgg/parts=16"] = 28546618
			seed["BenchmarkExecHashAgg/parts=64"] = 25556065
			seed["BenchmarkExecExchange/parts=4"] = 14640552
			seed["BenchmarkExecExchange/parts=16"] = 13727452
			seed["BenchmarkExecExchange/parts=64"] = 14406692
			seed["BenchmarkExecSort/parts=4"] = 176606736
			seed["BenchmarkExecSort/parts=16"] = 177370650
			seed["BenchmarkExecSort/parts=64"] = 170079896
			seed["BenchmarkExecFilter/parts=4"] = 18418638
			seed["BenchmarkExecFilter/parts=16"] = 17302801
			seed["BenchmarkExecFilter/parts=64"] = 17396355
			seed["BenchmarkExecProjectEmit/parts=4"] = 22731693
			seed["BenchmarkExecProjectEmit/parts=16"] = 24282005
			seed["BenchmarkExecProjectEmit/parts=64"] = 24315650
			seed["BenchmarkExecTPCDS/parts=4"] = 81160989
			seed["BenchmarkExecTPCDS/parts=16"] = 74422854
			seed["BenchmarkExecTPCDS/parts=64"] = 80710513
		}
		/^Benchmark/ {
			# Strip the -N GOMAXPROCS suffix go test appends on >1-cpu boxes.
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = bytes = allocs = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				else if ($i == "B/op") bytes = $(i-1)
				else if ($i == "allocs/op") allocs = $(i-1)
			}
			if (ns == "") next
			if (!(name in minNs) || ns + 0 < minNs[name] + 0) {
				minNs[name] = ns
				minBytes[name] = bytes
				minAllocs[name] = allocs
			}
			if (!(name in seen)) { seen[name] = 1; order[n++] = name }
		}
		END {
			printf "  \"current\": {\n"
			for (i = 0; i < n; i++) {
				nm = order[i]
				line = sprintf("    \"%s\": {\"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s", \
					nm, minNs[nm], minBytes[nm], minAllocs[nm])
				if (nm in seed)
					line = line sprintf(", \"speedup_vs_seed\": %.2f", seed[nm] / minNs[nm])
				line = line "}"
				printf "%s%s\n", line, (i < n-1 ? "," : "")
			}
			printf "  }\n"
		}
	' "$EXEC_TMP"
	printf '}\n'
} > "$EXEC_OUT"

echo "wrote $EXEC_OUT"

# ---------------------------------------------------------------------------
# View-storage benchmarks → BENCH_storage.json.
#
# The storage layer holds views as columnar encoded payloads (see
# internal/data/colenc and DESIGN.md §11): Write encodes partitions in
# parallel, a cold Consume verifies the payload checksum and decodes, a hot
# Consume is served decoded rows from the sharded hot-view cache.
# Families: the colenc codec itself (encode/decode MB/s and the at-rest
# compression ratio = row-bytes per encoded byte), the store paths
# (Write / ConsumeCold / ConsumeHot at 4/16/64 partitions), and the
# end-to-end reuse-hit job (view scan → sort → top-k through the executor).
# The "seed" block holds the numbers of the row-slice store measured with a
# mirror harness on the pre-columnar tree (ratio is 1.0 there by
# construction: views were stored as their row representation; there was no
# codec, so the Colenc benches carry no seed entry). Like the exec sweep,
# each family runs in its own process and the per-benchmark minimum over
# BENCH_STORAGE_PASSES passes is recorded.
# ---------------------------------------------------------------------------

STORAGE_OUT=BENCH_storage.json
STORAGE_TMP="$(mktemp)"
trap 'rm -f "$TMP" "$EXEC_TMP" "$STORAGE_TMP"' EXIT

SPASSES="${BENCH_STORAGE_PASSES:-2}"

pass=1
while [ "$pass" -le "$SPASSES" ]; do
	go test -run='^$' -bench='^BenchmarkColenc' \
		-benchtime="$BENCHTIME" ./internal/data/colenc/ | tee -a "$STORAGE_TMP"
	for fam in StorageWrite StorageConsumeCold StorageConsumeHot; do
		go test -run='^$' -bench="^Benchmark${fam}\$" \
			-benchtime="$BENCHTIME" ./internal/storage/ | tee -a "$STORAGE_TMP"
	done
	go test -run='^$' -bench='^BenchmarkStorageReuseHitJob$' \
		-benchtime="$BENCHTIME" ./internal/exec/ | tee -a "$STORAGE_TMP"
	pass=$((pass + 1))
done

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "passes": %s,\n' "$SPASSES"
	cat <<'SEED'
  "seed": {
    "BenchmarkStorageWrite/parts=4": {"ns_op": 436748, "mb_s": 1599.02, "ratio": 1.0},
    "BenchmarkStorageWrite/parts=16": {"ns_op": 1693173, "mb_s": 1649.84, "ratio": 1.0},
    "BenchmarkStorageWrite/parts=64": {"ns_op": 8359854, "mb_s": 1336.61, "ratio": 1.0},
    "BenchmarkStorageConsumeCold/parts=4": {"ns_op": 306851, "mb_s": 2275.92},
    "BenchmarkStorageConsumeCold/parts=16": {"ns_op": 1160460, "mb_s": 2407.21},
    "BenchmarkStorageConsumeCold/parts=64": {"ns_op": 5139734, "mb_s": 2174.02},
    "BenchmarkStorageConsumeHot/parts=4": {"ns_op": 32.76},
    "BenchmarkStorageConsumeHot/parts=16": {"ns_op": 34.03},
    "BenchmarkStorageConsumeHot/parts=64": {"ns_op": 36.65},
    "BenchmarkStorageReuseHitJob/parts=4": {"ns_op": 4498089},
    "BenchmarkStorageReuseHitJob/parts=16": {"ns_op": 5298636},
    "BenchmarkStorageReuseHitJob/parts=64": {"ns_op": 6528211}
  },
SEED
	awk '
		BEGIN {
			seedRatio["BenchmarkStorageWrite/parts=4"] = 1.0
			seedRatio["BenchmarkStorageWrite/parts=16"] = 1.0
			seedRatio["BenchmarkStorageWrite/parts=64"] = 1.0
			seedNs["BenchmarkStorageWrite/parts=4"] = 436748
			seedNs["BenchmarkStorageWrite/parts=16"] = 1693173
			seedNs["BenchmarkStorageWrite/parts=64"] = 8359854
			seedNs["BenchmarkStorageConsumeCold/parts=4"] = 306851
			seedNs["BenchmarkStorageConsumeCold/parts=16"] = 1160460
			seedNs["BenchmarkStorageConsumeCold/parts=64"] = 5139734
			seedNs["BenchmarkStorageConsumeHot/parts=4"] = 32.76
			seedNs["BenchmarkStorageConsumeHot/parts=16"] = 34.03
			seedNs["BenchmarkStorageConsumeHot/parts=64"] = 36.65
			seedNs["BenchmarkStorageReuseHitJob/parts=4"] = 4498089
			seedNs["BenchmarkStorageReuseHitJob/parts=16"] = 5298636
			seedNs["BenchmarkStorageReuseHitJob/parts=64"] = 6528211
		}
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = mbs = ratio = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				else if ($i == "MB/s") mbs = $(i-1)
				else if ($i == "ratio") ratio = $(i-1)
			}
			if (ns == "") next
			if (!(name in minNs) || ns + 0 < minNs[name] + 0) {
				minNs[name] = ns
				maxMbs[name] = mbs
				theRatio[name] = ratio
			}
			if (!(name in seen)) { seen[name] = 1; order[n++] = name }
		}
		END {
			printf "  \"current\": {\n"
			for (i = 0; i < n; i++) {
				nm = order[i]
				line = sprintf("    \"%s\": {\"ns_op\": %s", nm, minNs[nm])
				if (maxMbs[nm] != "")
					line = line sprintf(", \"mb_s\": %s", maxMbs[nm])
				if (theRatio[nm] != "")
					line = line sprintf(", \"ratio\": %s", theRatio[nm])
				if (nm in seedNs)
					line = line sprintf(", \"speedup_vs_seed\": %.2f", seedNs[nm] / minNs[nm])
				if (nm in seedRatio && theRatio[nm] != "")
					line = line sprintf(", \"bytes_reduction_vs_seed\": %.2f", theRatio[nm] / seedRatio[nm])
				line = line "}"
				printf "%s%s\n", line, (i < n-1 ? "," : "")
			}
			printf "  }\n"
		}
	' "$STORAGE_TMP"
	printf '}\n'
} > "$STORAGE_OUT"

echo "wrote $STORAGE_OUT"

# ---------------------------------------------------------------------------
# Observability benchmarks → BENCH_obs.json.
#
# Four families: the obs primitives themselves (span-tree emit + JSON
# export, registry snapshot, sharded counter add), the warmed submit path
# at the three observability levels (off = every hook seam nil, metrics =
# counters only, trace = the full default), and the raw exec vertex seam
# (empty vs no-op hook). The "seed" block is the hookless submit path —
# obs=off measured on this tree IS the pre-observability baseline, since
# SetObserver(nil) strips every seam the layer added — so
# slowdown_vs_seed on obs=metrics/obs=trace is the headline overhead
# number (check.sh gates the metrics one at OBS_OVERHEAD_PCT). Same
# per-family process isolation and min-of-passes method as the sweeps
# above.
# ---------------------------------------------------------------------------

OBS_OUT=BENCH_obs.json
OBS_TMP="$(mktemp)"
trap 'rm -f "$TMP" "$EXEC_TMP" "$STORAGE_TMP" "$OBS_TMP"' EXIT

OPASSES="${BENCH_OBS_PASSES:-2}"

pass=1
while [ "$pass" -le "$OPASSES" ]; do
	go test -run='^$' -bench='^BenchmarkTraceEmit$|^BenchmarkSnapshot$|^BenchmarkCounterAdd$' \
		-benchmem -benchtime="$BENCHTIME" ./internal/obs/ | tee -a "$OBS_TMP"
	go test -run='^$' -bench='^BenchmarkSubmit$' \
		-benchmem -benchtime="$BENCHTIME" ./internal/core/ | tee -a "$OBS_TMP"
	go test -run='^$' -bench='^BenchmarkExecObsOverhead$' \
		-benchmem -benchtime="$BENCHTIME" ./internal/exec/ | tee -a "$OBS_TMP"
	pass=$((pass + 1))
done

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "passes": %s,\n' "$OPASSES"
	cat <<'SEED'
  "seed": {
    "BenchmarkSubmit/obs=off": {"ns_op": 41113, "allocs_op": 103}
  },
SEED
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = bytes = allocs = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				else if ($i == "B/op") bytes = $(i-1)
				else if ($i == "allocs/op") allocs = $(i-1)
			}
			if (ns == "") next
			if (!(name in minNs) || ns + 0 < minNs[name] + 0) {
				minNs[name] = ns
				minBytes[name] = bytes
				minAllocs[name] = allocs
			}
			if (!(name in seen)) { seen[name] = 1; order[n++] = name }
		}
		END {
			base = minNs["BenchmarkSubmit/obs=off"] + 0
			printf "  \"current\": {\n"
			for (i = 0; i < n; i++) {
				nm = order[i]
				line = sprintf("    \"%s\": {\"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s", \
					nm, minNs[nm], minBytes[nm], minAllocs[nm])
				if (base > 0 && (nm == "BenchmarkSubmit/obs=metrics" || nm == "BenchmarkSubmit/obs=trace"))
					line = line sprintf(", \"overhead_vs_off_pct\": %.2f", (minNs[nm] - base) / base * 100)
				line = line "}"
				printf "%s%s\n", line, (i < n-1 ? "," : "")
			}
			printf "  }\n"
		}
	' "$OBS_TMP"
	printf '}\n'
} > "$OBS_OUT"

echo "wrote $OBS_OUT"
