#!/bin/sh
# bench.sh — run the frontend hot-path benchmarks and write BENCH_frontend.json.
#
# The frontend (signature computation, metadata lookup, optimizer rewrite)
# runs on every submitted job, so its per-job cost is tracked as a checked-in
# artifact. The "seed" block holds the numbers from before the fast-path work
# (single-pass hashing, interning, snapshot metadata reads, lazy-clone
# optimizer) for comparison; "current" is re-measured by this script.
# BenchmarkMetadataLookupParallel runs at -cpu=1,4 to show the lock-free
# snapshot read path scaling with GOMAXPROCS.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_frontend.json
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

BENCHTIME="${BENCHTIME:-2s}"

go test -run='^$' -bench='^BenchmarkSignature$|^BenchmarkAllSubgraphs$' \
	-benchmem -benchtime="$BENCHTIME" ./internal/signature/ | tee -a "$TMP"
go test -run='^$' -bench='^BenchmarkOptimizeFrontend$' \
	-benchmem -benchtime="$BENCHTIME" ./internal/optimizer/ | tee -a "$TMP"
go test -run='^$' -bench='^BenchmarkMetadataLookup' \
	-benchmem -benchtime="$BENCHTIME" -cpu=1,4 ./internal/metadata/ | tee -a "$TMP"
go test -run='^$' -bench='^BenchmarkConcurrentSubmit$' -benchtime=3x . | tee -a "$TMP"

{
	printf '{\n'
	printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	cat <<'SEED'
  "seed": {
    "BenchmarkSignature":                {"ns_op": 20318, "bytes_op": 9304, "allocs_op": 169},
    "BenchmarkAllSubgraphs":             {"ns_op": 8911, "bytes_op": 3624, "allocs_op": 72},
    "BenchmarkOptimizeFrontend/noreuse": {"ns_op": 23069, "bytes_op": 13080, "allocs_op": 150},
    "BenchmarkOptimizeFrontend/use":     {"ns_op": 15448, "bytes_op": 9424, "allocs_op": 92},
    "BenchmarkOptimizeFrontend/build":   {"ns_op": 32537, "bytes_op": 17152, "allocs_op": 226},
    "BenchmarkMetadataLookupParallel":   {"ns_op": 4113, "bytes_op": 6608, "allocs_op": 11},
    "BenchmarkMetadataLookupSerial":     {"ns_op": 4275, "bytes_op": 6608, "allocs_op": 11},
    "BenchmarkConcurrentSubmit":         {"jobs_per_sec": 2026}
  },
SEED
	awk '
		/^Benchmark/ {
			name = $1
			ns = bytes = allocs = jps = ""
			for (i = 2; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i-1)
				else if ($i == "B/op") bytes = $(i-1)
				else if ($i == "allocs/op") allocs = $(i-1)
				else if ($i == "jobs/s") jps = $(i-1)
			}
			line = sprintf("    \"%s\": {", name)
			sep = ""
			if (ns != "")     { line = line sep "\"ns_op\": " ns; sep = ", " }
			if (bytes != "")  { line = line sep "\"bytes_op\": " bytes; sep = ", " }
			if (allocs != "") { line = line sep "\"allocs_op\": " allocs; sep = ", " }
			if (jps != "")    { line = line sep "\"jobs_per_sec\": " jps; sep = ", " }
			line = line "}"
			lines[n++] = line
		}
		END {
			printf "  \"current\": {\n"
			for (i = 0; i < n; i++)
				printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
			printf "  }\n"
		}
	' "$TMP"
	printf '}\n'
} > "$OUT"

echo "wrote $OUT"
