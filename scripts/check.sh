#!/bin/sh
# check.sh — the full local gate: vet, build, tests, race-detector runs on
# the concurrent packages, and a 1-iteration benchmark smoke pass.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core/ ./internal/exec/ ./internal/cluster/ ./internal/storage/
# Parallel data-plane kernels under the race detector, by name: the
# partition-parallel join/agg/exchange/sort paths and the skewed-partition
# stress that diffs them against the serial reference walk.
go test -race -run='TestSkewStress|TestParallelScheduler|TestViewScanConcurrent|TestExecutionDeterminism|TestMergeJoinMatchesHashJoin' \
	-count=1 ./internal/exec/
# Hot-view cache under the race detector, by name: concurrent consumers
# sharing one decode while views churn (delete/rewrite), plus the parallel
# encode/decode multi-partition round trip.
go test -race -run='TestConsumeCacheConcurrent|TestConcurrentStoreOps|TestMultiPartitionRoundTrip' \
	-count=1 ./internal/storage/
# Compiled-expression equivalence, by name: the pinned interpreter edge-
# case semantics table, the 4000-trial compiled-vs-interpreted golden
# sweep, and the shared-program race tests (one compiled program across
# goroutines at the expr level and across partition workers at the exec
# level).
go test -run='TestInterpreterScalarSemantics|TestCompiledGoldenEquivalence|TestExecCompiledMatchesInterpreter' \
	-count=1 ./internal/expr/ ./internal/exec/
go test -race -run='TestCompiledSharedAcrossGoroutines|TestCompiledSharedAcrossPartitionWorkers' \
	-count=1 ./internal/expr/ ./internal/exec/
# Columnar codec fuzz smoke: a short seeded-corpus fuzz run of the
# encode/decode round trip (all data kinds, NULLs, extreme values,
# corrupt-payload rejection). Longer runs: go test -fuzz with a budget.
go test -run='^$' -fuzz='^FuzzColencRoundTrip$' -fuzztime=10s ./internal/data/colenc/
# Compiled-expression fuzz smoke: random trees x random (wrong-kind, NULL,
# NaN) rows, compiled output must be bit-identical to the interpreter.
go test -run='^$' -fuzz='^FuzzCompiledEval$' -fuzztime=10s ./internal/expr/
# Analyzer scale-out under the race detector, by name: the golden
# serial-vs-parallel equivalence sweep (every strategy and admin knob) and
# the concurrent Append-while-Analyze soak over the zero-copy snapshot.
go test -race -run='TestAnalyzerGolden|TestAnalyzerConcurrent|TestOverlapStatsGolden' \
	-count=1 ./internal/analyzer/
# Job lifecycle under the race detector, by name: cancellation checkpoints
# (pre-cancelled, mid-run, retry-loop) and deadline determinism in the
# executor, plus the service-level paths — deadline shedding, mid-job
# retraction, circuit breakers, drain, and the bounded in-flight gate.
go test -race -run='TestRunCtx|TestShedUnmeetableDeadline|TestDeadlineExceededFailsJob|TestCancelMidJobRetractsEverything|TestMetadataBreakerLifecycle|TestStoreBreakerDegradesToBaseline|TestDrain|TestMaxInFlight|TestSubmitBatchAggregatesFailures|TestBatchConcurrencyResolution' \
	-count=1 ./internal/core/ ./internal/exec/
# Circuit-breaker state machine unit tests under the race detector.
go test -race -count=1 ./internal/breaker/
# Chaos soak under the race detector, bounded rounds: concurrent jobs
# through a seeded fault schedule (vertex crashes, storage faults, view
# corruption, metadata blackouts) with per-job output validation, plus a
# per-round lifecycle wave (randomized cancellations, tight deadlines)
# whose goroutine-leak gate doubles as the leak check for the lifecycle
# machinery. The CHAOS_ROUNDS knob scales it; `make chaos` runs the long
# version.
CHAOS_ROUNDS="${CHAOS_ROUNDS:-2}" go test -race -run='TestChaosSoak' -count=1 ./internal/core/
# Observability layer under the race detector, by name: trace export must
# be byte-identical across serial and DAG execution for a fixed fault
# seed, Snapshot must stay consistent while a concurrent batch mutates
# every registry, and the grouped recovery counters must never tear. The
# obs package's own tests (sharded registry, trace store eviction) run
# alongside.
go test -race -run='TestTraceDeterminismSerialVsDAG|TestSnapshotConcurrentWithBatch|TestRecoveryStatsSnapshotConsistent|TestTracingDisabled|TestLifecycleOutcomeMetrics' \
	-count=1 ./internal/core/
go test -race -count=1 ./internal/obs/
# Observability overhead guard on the warmed submit path, obs=off (every
# hook seam nil) vs obs=metrics (the always-on counters). Two gates:
#   - allocs/op delta at most OBS_ALLOC_BUDGET (default 5). Allocation
#     counts are deterministic, so this is the sharp edge — it fails the
#     moment someone puts a per-submit allocation in a hot hook.
#   - ns/op: median over OBS_GUARD_SAMPLES runs of each mode in one
#     process, metrics at most OBS_OVERHEAD_PCT percent over off
#     (default 20). Deliberately loose: single-sample wall clock on a
#     shared runner swings ±15%, far above the true sub-1% cost (see
#     BENCH_obs.json), so the median gate only catches gross
#     regressions like tracing leaking into the metrics-only path.
# Full tracing is an opt-in and is not gated; bench.sh records its cost.
OBS_TMP="$(mktemp)"
go test -run='^$' -bench='^BenchmarkSubmit$/^obs=(off|metrics)$' \
	-benchmem -benchtime="${OBS_GUARD_BENCHTIME:-0.2s}" \
	-count="${OBS_GUARD_SAMPLES:-8}" ./internal/core/ | tee "$OBS_TMP"
awk -v pct="${OBS_OVERHEAD_PCT:-20}" -v allocbudget="${OBS_ALLOC_BUDGET:-5}" '
	function median(a, n,    i, j, t) {
		for (i = 2; i <= n; i++)
			for (j = i; j > 1 && a[j-1] > a[j]; j--) { t = a[j]; a[j] = a[j-1]; a[j-1] = t }
		return n % 2 ? a[(n+1)/2] : (a[n/2] + a[n/2+1]) / 2
	}
	/^BenchmarkSubmit\/obs=off/     { offs[++no] = $3 + 0; offAllocs = $7 + 0 }
	/^BenchmarkSubmit\/obs=metrics/ { mets[++nm] = $3 + 0; metAllocs = $7 + 0 }
	END {
		if (no == 0 || nm == 0) { print "obs guard: missing benchmark output"; exit 1 }
		offNs = median(offs, no); metNs = median(mets, nm)
		dAllocs = metAllocs - offAllocs
		over = (metNs - offNs) / offNs * 100
		printf "obs guard: off=%.0fns/%dallocs metrics=%.0fns/%dallocs (medians of %d/%d) " \
			"overhead=%.2f%% (budget %s%%) +%dallocs (budget %s)\n", \
			offNs, offAllocs, metNs, metAllocs, no, nm, over, pct, dAllocs, allocbudget
		if (dAllocs > allocbudget + 0) { print "obs guard: metrics hooks allocate over budget"; exit 1 }
		if (over > pct + 0) { print "obs guard: metrics overhead over budget"; exit 1 }
	}
' "$OBS_TMP"
rm -f "$OBS_TMP"
# Exec kernel benchmark smoke: one iteration of every data-plane benchmark
# exercises the kernels at 4/16/64 partitions (full runs live in bench.sh).
go test -run='^$' -bench='^BenchmarkExec' -benchtime=1x ./internal/exec/
# Lifecycle overhead probe smoke (full runs feed BENCH_exec.json).
go test -run='^$' -bench='^BenchmarkSubmitCancelled$' -benchtime=1x ./internal/core/
# Expression-compiler benchmark smoke: compile cost plus the per-row
# interp-vs-compiled pairs (full numbers live in EXPERIMENTS.md).
go test -run='^$' -bench='^BenchmarkExpr' -benchtime=1x ./internal/expr/
# Storage benchmark smoke: codec, store write/consume, and the end-to-end
# reuse-hit job (full runs + BENCH_storage.json live in bench.sh).
go test -run='^$' -bench='^BenchmarkColenc|^BenchmarkStorage' -benchtime=1x \
	./internal/data/colenc/ ./internal/storage/
go test -run='^$' -bench='^BenchmarkStorageReuseHitJob$' -benchtime=1x ./internal/exec/
# Frontend hot-path benchmarks (per-job submission cost): one iteration
# verifies the benchmark harnesses and their internal assertions.
go test -run='^$' -bench='^BenchmarkSignature$|^BenchmarkOptimizeFrontend$|^BenchmarkMetadataLookup' \
	-benchtime=1x ./internal/signature/ ./internal/optimizer/ ./internal/metadata/
# Analyzer benchmark smoke: one iteration at the -short sizes verifies the
# harnesses (full runs + BENCH_analyzer.json live in bench_analyzer.sh).
go test -run='^$' -bench='^BenchmarkAnalyzer' -benchtime=1x -short ./internal/analyzer/
# Smoke-run every benchmark once; -short skips the heavyweight runs
# (full TPC-DS) so this finishes quickly.
go test -run='^$' -bench=. -benchtime=1x -short ./...
