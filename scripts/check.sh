#!/bin/sh
# check.sh — the full local gate: vet, build, tests, race-detector runs on
# the concurrent packages, and a 1-iteration benchmark smoke pass.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core/ ./internal/exec/ ./internal/cluster/
# Parallel data-plane kernels under the race detector, by name: the
# partition-parallel join/agg/exchange/sort paths and the skewed-partition
# stress that diffs them against the serial FailAfter-path reference.
go test -race -run='TestSkewStress|TestParallelScheduler|TestViewScanConcurrent|TestExecutionDeterminism|TestMergeJoinMatchesHashJoin' \
	-count=1 ./internal/exec/
# Exec kernel benchmark smoke: one iteration of every data-plane benchmark
# exercises the kernels at 4/16/64 partitions (full runs live in bench.sh).
go test -run='^$' -bench='^BenchmarkExec' -benchtime=1x ./internal/exec/
# Frontend hot-path benchmarks (per-job submission cost): one iteration
# verifies the benchmark harnesses and their internal assertions.
go test -run='^$' -bench='^BenchmarkSignature$|^BenchmarkOptimizeFrontend$|^BenchmarkMetadataLookup' \
	-benchtime=1x ./internal/signature/ ./internal/optimizer/ ./internal/metadata/
# Smoke-run every benchmark once; -short skips the heavyweight runs
# (full TPC-DS) so this finishes quickly.
go test -run='^$' -bench=. -benchtime=1x -short ./...
