package cloudviews

import (
	"bytes"
	"fmt"
	"testing"
)

// The façade tests exercise the library exactly as a downstream user
// would: build a catalog, author jobs (builder API and script), run the
// service, analyze, reuse, and persist — all through package cloudviews.

func facadeCatalog(t testing.TB) *Catalog {
	t.Helper()
	cat := NewCatalog()
	tab := NewTable("purchases", "v1", Schema{
		{Name: "customer", Kind: KindInt},
		{Name: "sku", Kind: KindString},
		{Name: "day", Kind: KindDate},
		{Name: "amount", Kind: KindFloat},
	}, 4)
	rr := 0
	for i := 0; i < 800; i++ {
		tab.AppendHash(Row{
			Int(int64(i % 60)),
			Str(fmt.Sprintf("sku%d", i%25)),
			Date(18000),
			Float(float64(i%300) + 0.5),
		}, []int{0}, &rr)
	}
	cat.Register(tab)
	return cat
}

func facadeMeta(id string) JobMeta {
	return JobMeta{JobID: id, VC: "api_vc", User: "tester", TemplateID: id, Period: 1}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	cat := facadeCatalog(t)
	svc := NewService(cat, Config{Enabled: true, ValidateResults: true})

	shared := func() *Plan {
		return Scan("purchases", "v1", mustSchema(cat, t)).
			Filter(Eq(Col(2, "day"), Param("day", Date(18000)))).
			ShuffleHash([]int{0}, 4).
			HashAgg([]int{0}, []AggSpec{{Fn: AggSum, Col: 3}})
	}
	r1, err := SubmitJob(svc, facadeMeta("spend-report"), shared().Sort([]int{1}, []bool{true}).Output("spend"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SubmitJob(svc, facadeMeta("big-spenders"),
		shared().Filter(Bin(OpGt, Col(1, "sum_amount"), Lit(Float(900)))).Output("big")); err != nil {
		t.Fatal(err)
	}
	an := svc.RunAnalyzer(AnalyzerConfig{MinFrequency: 2, TopK: 1})
	if len(an.Selected) != 1 {
		t.Fatalf("selected %d", len(an.Selected))
	}
	// Signature helpers work on public plans.
	sig := SignatureOf(shared())
	if sig.Normalized != an.Selected[0].NormSig {
		t.Error("public SignatureOf disagrees with analyzer selection")
	}

	r3, err := SubmitJob(svc, facadeMeta("spend-report-2"), shared().Sort([]int{1}, []bool{true}).Output("spend"))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := SubmitJob(svc, facadeMeta("big-spenders-2"),
		shared().Filter(Bin(OpGt, Col(1, "sum_amount"), Lit(Float(900)))).Output("big"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Decision.ViewsBuilt) != 1 || len(r4.Decision.ViewsUsed) != 1 {
		t.Errorf("build/reuse decisions: %d/%d", len(r3.Decision.ViewsBuilt), len(r4.Decision.ViewsUsed))
	}
	if r4.Result.TotalCPU >= r4.BaselineResult.TotalCPU {
		t.Error("reuse did not help")
	}
	_ = r1

	// Overlap statistics through the public API.
	st := ComputeOverlapStats(svc.Repo.Observations())
	if st.TotalJobs != 4 || st.PctJobsOverlapping <= 0 {
		t.Errorf("stats: %+v", st)
	}

	// Repository persistence round trip.
	var buf bytes.Buffer
	if err := svc.Repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumJobs() != 4 {
		t.Errorf("loaded jobs = %d", loaded.NumJobs())
	}
}

func TestPublicAPIScripts(t *testing.T) {
	cat := facadeCatalog(t)
	src := `
rows = EXTRACT FROM purchases;
f = FILTER rows WHERE day == @day AND amount > 10.0;
s = SHUFFLE f BY customer INTO 4;
a = AGGREGATE s BY customer SUM(amount), COUNT(sku);
OUTPUT a TO spend;
`
	compiled, err := CompileScript(src, cat, ScriptParams{"day": Date(18000)})
	if err != nil {
		t.Fatal(err)
	}
	root, err := compiled.Root()
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(cat, Config{Enabled: true})
	r, err := SubmitJob(svc, facadeMeta("scripted"), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Result.Outputs["spend"]) == 0 {
		t.Error("script produced no rows")
	}
}

func TestPublicAPIWorkloadGenerators(t *testing.T) {
	p := DefaultWorkloadProfile("facade", 3)
	p.Templates = 20
	w := GenerateWorkload(p)
	if len(w.JobsForInstance(0)) < 20 {
		t.Error("generator underproduced")
	}
	tp := GenerateTPCDS(0.5, 1)
	b := &TPCDSBuilder{Cat: tp}
	q := b.Query(3)
	svc := NewService(tp, Config{})
	if _, err := SubmitJob(svc, facadeMeta(q.Name), q.Root); err != nil {
		t.Fatal(err)
	}
}

func mustSchema(cat *Catalog, t testing.TB) Schema {
	t.Helper()
	tab, err := cat.Get("purchases")
	if err != nil {
		t.Fatal(err)
	}
	return tab.Schema
}
